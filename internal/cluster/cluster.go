// Package cluster is the distributed substrate of the library — the
// replacement for the MPI layer of the original PARMONC.
//
// The original library runs the user's program on M MPI ranks; rank 0
// collects subtotal moments the other ranks push periodically
// (Sec. 2.2). Go has no MPI, but PARMONC uses none of MPI's collective
// machinery — only "send subtotals to rank 0, rarely" — so a small RPC
// protocol over TCP reproduces the communication pattern exactly:
//
//	worker                         coordinator (rank 0)
//	  Register ────────────────▶   assign processor index + job spec
//	  simulate realizations ...
//	  Push(subtotal moments) ──▶   merge (formula (5)), save periodically
//	  ... repeat until told to stop or out of work ...
//	  Done ────────────────────▶   account; release
//
// Workers are fully asynchronous: no worker ever waits for another, and
// the coordinator merges whatever arrives whenever it arrives — the
// paper's "no need for load balancing" property. A worker that dies
// silently costs only its unsent subtotals; the surviving workers'
// moments remain valid because every worker draws from its own
// subsequence of the parallel RNG.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// JobSpec describes the simulation a coordinator manages. It is
// transmitted to every worker at registration, so worker binaries need
// only the realization routine and the coordinator address.
type JobSpec struct {
	SeqNum     uint64     // "experiments" subsequence number
	Nrow, Ncol int        // realization matrix dimensions
	MaxSamples int64      // total sample volume target; <= 0 means unbounded
	Params     rng.Params // leap exponents
	Gamma      float64    // confidence coefficient
	PassEvery  int64      // worker pushes after this many realizations (>= 1)
	Workload   string     // optional workload identity, checked at registration

	// WorkerQuota, when positive, bounds every worker to exactly this
	// many realizations before it flushes and detaches — a fixed
	// per-processor realization budget. Combined with MaxSamples =
	// workers × WorkerQuota it makes a distributed run's per-worker
	// workload deterministic, which the chaos conformance suite relies
	// on. Zero means workers run until told to stop.
	WorkerQuota int64
}

// Validate checks the spec invariants.
func (s JobSpec) Validate() error {
	if s.Nrow <= 0 || s.Ncol <= 0 {
		return fmt.Errorf("cluster: invalid dimensions %d×%d", s.Nrow, s.Ncol)
	}
	if s.PassEvery < 1 {
		return fmt.Errorf("cluster: PassEvery %d must be >= 1", s.PassEvery)
	}
	if s.Gamma <= 0 {
		return fmt.Errorf("cluster: confidence coefficient %g must be positive", s.Gamma)
	}
	if s.WorkerQuota < 0 {
		return fmt.Errorf("cluster: WorkerQuota %d must not be negative", s.WorkerQuota)
	}
	return s.Params.Validate()
}

// RegisterArgs is sent by a worker when it joins.
type RegisterArgs struct {
	Hostname string // informational
	// Workload identifies the realization routine the worker will run.
	// When both sides set it, the coordinator rejects mismatches at
	// registration — catching the operator error of joining a worker
	// built for a different job before any wrong moments are merged.
	Workload string
	// ClientID is an opaque identity chosen by the worker process,
	// making registration idempotent: if the coordinator applied a
	// Register but the reply was lost in the network, the retried call
	// returns the same processor index instead of burning a fresh
	// subsequence and orphaning the old index. Empty means
	// non-idempotent registration (every call assigns a new index).
	ClientID string
}

// RegisterReply assigns the worker its processor subsequence and job.
type RegisterReply struct {
	Worker int // processor index (>= 1; the coordinator itself is rank 0)
	Spec   JobSpec
	Stop   bool // true when the job is already complete
}

// PushArgs carries one subtotal snapshot from a worker.
type PushArgs struct {
	Worker int
	Snap   stat.Snapshot
	// Seq is the worker's monotonic push sequence number (starting at
	// 1), the idempotency key: the coordinator acknowledges but does
	// not re-merge a sequence number it has already applied, so a push
	// whose reply was lost can be retried without double-counting
	// moments. Zero means unsequenced (legacy workers; always merged).
	Seq uint64
}

// PushReply tells the worker whether to continue.
type PushReply struct {
	Stop bool
}

// DoneArgs signals that a worker has stopped (voluntarily or on Stop).
type DoneArgs struct {
	Worker int
	// Retries and Reconnects report the transport-level resilience
	// work this worker performed, folded into the coordinator's
	// collector metrics for the job-wide delivery story.
	Retries    int64
	Reconnects int64
}

// DoneReply is empty.
type DoneReply struct{}

// ServiceName is the RPC service name workers dial.
const ServiceName = "Parmonc"

// Coordinator is the rank-0 process: it assigns processor indices and
// feeds pushed moments to the collector engine, which owns merging,
// checkpointing and results files. The coordinator itself is only the
// net/rpc transport.
type Coordinator struct {
	spec    JobSpec
	eng     *collect.Collector
	journal *obs.Journal // nil: no journaling

	mu        sync.Mutex
	next      int            // next processor index to hand out
	byClient  map[string]int // ClientID → assigned index (idempotent Register)
	stopped   bool
	completed chan struct{} // closed when target reached and all workers done

	timeout    time.Duration
	drain      time.Duration
	reaperStop chan struct{}

	ln     net.Listener
	server *rpc.Server

	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool           // Close has begun; reject late-accepted conns
	serving sync.WaitGroup // one per in-flight ServeConn goroutine
}

// CoordinatorConfig bundles the optional knobs of NewCoordinator.
type CoordinatorConfig struct {
	WorkDir    string        // where parmonc_data is written; default "."
	AverPeriod time.Duration // how often pushes trigger a save; default 2 min
	Resume     bool          // merge the previous run's checkpoint

	// WorkerTimeout prunes workers that have not been heard from for
	// this long, so a crashed worker cannot stall job completion. Its
	// already-pushed subtotals remain valid (they came from the
	// worker's own disjoint substream); only unsent work is lost — the
	// same failure semantics as an MPI rank dying in the original.
	// Zero disables pruning.
	WorkerTimeout time.Duration

	// SaveWorkerSnapshots writes each worker's cumulative moments to
	// parmonc_data/workers on every push, so the manaver command can
	// rebuild results if the coordinator dies before its final save —
	// the paper's post-mortem averaging workflow (Sec. 3.4).
	SaveWorkerSnapshots bool

	// DrainTimeout bounds how long Close waits for in-flight worker
	// connections to finish their RPCs before force-closing them, so a
	// final subtotal flush racing shutdown is merged instead of failing
	// with a spurious connection error. Default 2 s; negative disables
	// draining (immediate force-close).
	DrainTimeout time.Duration

	// Registry, if non-nil, receives the collector engine's metrics
	// plus coordinator-level gauges (active workers, sample volume,
	// target state). Serve it with obs.Serve (the parmonc coord --http
	// flag) to scrape a running job.
	Registry *obs.Registry

	// Journal, if non-nil, receives the run-event journal: every
	// collector event plus worker register/deregister records with
	// per-worker attribution. The caller owns the journal and closes
	// it after the job.
	Journal *obs.Journal
}

// NewCoordinator creates a coordinator listening on addr (e.g.
// "127.0.0.1:0"); the chosen address is available via Addr.
func NewCoordinator(spec JobSpec, cfg CoordinatorConfig, addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewCoordinatorOn(spec, cfg, ln)
	if err != nil {
		ln.Close()
	}
	return c, err
}

// NewCoordinatorOn is NewCoordinator serving on a caller-supplied
// listener. This is how the chaos suite interposes a fault-injecting
// faultnet.Listener between the coordinator and its workers; it also
// lets deployments bring their own (e.g. TLS) listeners. The
// coordinator takes ownership of ln and closes it in Close.
func NewCoordinatorOn(spec JobSpec, cfg CoordinatorConfig, ln net.Listener) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "."
	}
	if cfg.AverPeriod == 0 {
		cfg.AverPeriod = 2 * time.Minute
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	dir, err := store.Open(cfg.WorkDir)
	if err != nil {
		return nil, err
	}
	meta := store.RunMeta{
		SeqNum:    spec.SeqNum,
		Nrow:      spec.Nrow,
		Ncol:      spec.Ncol,
		MaxSV:     spec.MaxSamples,
		Params:    spec.Params,
		Gamma:     spec.Gamma,
		StartedAt: time.Now(),
	}
	eng, err := collect.New(dir, meta, collect.Config{
		Resume:              cfg.Resume,
		AverPeriod:          cfg.AverPeriod,
		SaveWorkerSnapshots: cfg.SaveWorkerSnapshots,
		Registry:            cfg.Registry,
		Hook:                collect.JournalHook(cfg.Journal),
	})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:       spec,
		eng:        eng,
		journal:    cfg.Journal,
		byClient:   map[string]int{},
		completed:  make(chan struct{}),
		timeout:    cfg.WorkerTimeout,
		drain:      cfg.DrainTimeout,
		reaperStop: make(chan struct{}),
		conns:      map[net.Conn]struct{}{},
	}
	if cfg.Registry != nil {
		cfg.Registry.GaugeFunc("parmonc_coordinator_active_workers", "Workers currently attached to the coordinator.",
			func() float64 { return float64(eng.Active()) })
		cfg.Registry.GaugeFunc("parmonc_coordinator_samples_total", "Total sample volume merged so far (incl. resumed base).",
			func() float64 { return float64(eng.N()) })
		cfg.Registry.GaugeFunc("parmonc_coordinator_target_reached", "1 once the sample target has been met.",
			func() float64 {
				if eng.TargetReached() {
					return 1
				}
				return 0
			})
	}

	c.server = rpc.NewServer()
	if err := c.server.RegisterName(ServiceName, &service{c}); err != nil {
		return nil, err
	}
	c.ln = ln
	go c.acceptLoop()
	if c.timeout > 0 {
		go c.reapLoop()
	}
	return c, nil
}

// reapLoop periodically prunes workers that have gone silent.
func (c *Coordinator) reapLoop() {
	tick := time.NewTicker(c.timeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-c.completed:
			return
		case <-tick.C:
			c.eng.PruneStale(c.timeout)
			c.mu.Lock()
			c.maybeCompleteLocked()
			c.mu.Unlock()
		}
	}
}

// PrunedWorkers reports how many workers were dropped for silence.
func (c *Coordinator) PrunedWorkers() int {
	return int(c.eng.Metrics().PrunedWorkers)
}

// Addr returns the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.connMu.Lock()
		if c.closing {
			c.connMu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.serving.Add(1)
		c.connMu.Unlock()
		go func() {
			defer c.serving.Done()
			c.server.ServeConn(conn)
			c.connMu.Lock()
			delete(c.conns, conn)
			c.connMu.Unlock()
		}()
	}
}

// service wraps the coordinator so only the RPC methods are exported to
// the wire.
type service struct{ c *Coordinator }

// Register assigns the calling worker a processor index. With a
// non-empty ClientID the call is idempotent: a retry after a lost reply
// returns the already-assigned index instead of a fresh one.
func (s *service) Register(args RegisterArgs, reply *RegisterReply) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spec.Workload != "" && args.Workload != "" && args.Workload != c.spec.Workload {
		return fmt.Errorf("cluster: worker runs workload %q but the job is %q", args.Workload, c.spec.Workload)
	}
	if args.ClientID != "" {
		if w, ok := c.byClient[args.ClientID]; ok {
			reply.Worker = w
			reply.Spec = c.spec
			reply.Stop = c.stopped || c.eng.TargetReached()
			if reply.Stop {
				// The worker will exit on Stop without calling Done;
				// release the index its first (reply-lost) Register
				// activated so it cannot stall completion.
				_ = c.eng.Deregister(w)
				c.maybeCompleteLocked()
			} else {
				c.eng.Register(w) // refresh liveness (no-op if still active)
			}
			return nil
		}
	}
	if c.stopped || c.eng.TargetReached() {
		reply.Stop = true
		reply.Spec = c.spec
		return nil
	}
	c.next++
	w := c.next // processor indices start at 1; the coordinator is rank 0
	if err := c.spec.Params.CheckCoord(rng.Coord{Experiment: c.spec.SeqNum, Processor: uint64(w)}); err != nil {
		return fmt.Errorf("cluster: out of processor subsequences: %w", err)
	}
	c.eng.Register(w)
	if args.ClientID != "" {
		c.byClient[args.ClientID] = w
	}
	if c.journal != nil {
		c.journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
			"hostname": args.Hostname, "client_id": args.ClientID,
		}})
	}
	reply.Worker = w
	reply.Spec = c.spec
	return nil
}

// Push merges a worker's subtotal moments through the collector engine,
// which validates the snapshot before merging: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals. A sequence number the engine has already applied for this
// worker is acknowledged without re-merging, so retried deliveries are
// idempotent.
func (s *service) Push(args PushArgs, reply *PushReply) error {
	c := s.c
	if err := c.eng.PushSeq(args.Worker, args.Seq, args.Snap); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply.Stop = c.stopped || c.eng.TargetReached()
	return nil
}

// Done releases a worker. A retried Done for a worker index that was
// assigned but is no longer active (the first delivery was applied but
// its reply lost, or the worker was pruned) succeeds idempotently.
func (s *service) Done(args DoneArgs, reply *DoneReply) error {
	c := s.c
	if err := c.eng.Deregister(args.Worker); err != nil {
		c.mu.Lock()
		assigned := args.Worker >= 1 && args.Worker <= c.next
		c.mu.Unlock()
		if !assigned {
			return fmt.Errorf("cluster: done from unknown worker %d", args.Worker)
		}
		return nil // duplicate Done: already detached
	}
	c.eng.NoteTransport(args.Retries, args.Reconnects)
	if c.journal != nil {
		c.journal.Record(obs.Event{Kind: "deregister", Worker: args.Worker, Fields: map[string]any{
			"retries": args.Retries, "reconnects": args.Reconnects,
		}})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maybeCompleteLocked()
	return nil
}

func (c *Coordinator) maybeCompleteLocked() {
	if c.eng.Active() == 0 && (c.stopped || c.eng.TargetReached()) {
		select {
		case <-c.completed:
		default:
			close(c.completed)
		}
	}
}

// Stop tells all workers (at their next push) to stop, even if the
// sample target has not been reached — the job-kill path.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	c.maybeCompleteLocked()
}

// Wait blocks until the sample target is reached and all workers have
// detached, or ctx is cancelled (which stops the job). It then writes
// the final results and returns the merged report.
func (c *Coordinator) Wait(ctx context.Context) (stat.Report, error) {
	select {
	case <-c.completed:
	case <-ctx.Done():
		c.Stop()
		// Give workers a bounded grace period to drain, then finalize
		// with whatever has arrived.
		select {
		case <-c.completed:
		case <-time.After(5 * time.Second):
		}
	}
	return c.eng.Finalize()
}

// N returns the current total sample volume (including any resumed
// base).
func (c *Coordinator) N() int64 { return c.eng.N() }

// Status is a point-in-time view of the coordinator, including the
// collector engine's metrics. The JSON tags are the /statusz wire
// format of the ops HTTP server.
type Status struct {
	N             int64                   `json:"n"`              // total sample volume (incl. resumed base)
	ActiveWorkers int                     `json:"active_workers"` // workers currently attached
	Stopped       bool                    `json:"stopped"`        // Stop was called
	TargetReached bool                    `json:"target_reached"` // the sample target has been met
	Metrics       collect.MetricsSnapshot `json:"metrics"`        // engine counters
}

// Status reports the coordinator's current state and metrics.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	stopped := c.stopped
	c.mu.Unlock()
	return Status{
		N:             c.eng.N(),
		ActiveWorkers: c.eng.Active(),
		Stopped:       stopped,
		TargetReached: c.eng.TargetReached(),
		Metrics:       c.eng.Metrics(),
	}
}

// Close shuts down the coordinator: it stops accepting new workers,
// waits up to the configured DrainTimeout for in-flight worker
// connections to finish their RPCs (so a final subtotal flush racing
// shutdown is merged, not dropped with a spurious error), then
// force-closes whatever remains, and stops the reaper.
func (c *Coordinator) Close() error {
	select {
	case <-c.reaperStop:
	default:
		close(c.reaperStop)
	}
	err := c.ln.Close()

	c.connMu.Lock()
	c.closing = true
	c.connMu.Unlock()

	if c.drain > 0 {
		drained := make(chan struct{})
		go func() {
			c.serving.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(c.drain):
		}
	}

	// Force-close stragglers (wedged or still-connected workers) so
	// their ServeConn goroutines terminate.
	c.connMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.serving.Wait()
	return err
}

// The worker half of the protocol lives in worker.go: RunWorker,
// RunNamedWorker, RunWorkerOpts and RunResilientWorker, all built on
// the retrying, reconnecting ResilientClient in retry.go.
