package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
)

// WorkerConfig tunes RunResilientWorker beyond the address.
type WorkerConfig struct {
	// Workload names the realization routine; the coordinator rejects
	// mismatches at registration when its JobSpec also names one.
	Workload string
	// Hostname is informational (default: os.Hostname).
	Hostname string
	// Retry governs reconnect/retry behavior; the zero value uses
	// DefaultRetryPolicy.
	Retry RetryPolicy
}

// WorkerReport summarizes one worker session: how much it simulated
// and how much resilience work the transport needed. The same counters
// reach the coordinator's collector metrics via Done.
type WorkerReport struct {
	Worker       int   // assigned processor index (0 if never registered)
	Realizations int64 // realizations simulated
	Pushes       int64 // subtotal snapshots acknowledged by the coordinator
	Retries      int64 // RPC attempts beyond the first
	Reconnects   int64 // dials beyond the first successful one
}

// newClientID returns a random identity for idempotent registration.
func newClientID() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a time-derived identity; uniqueness, not
		// secrecy, is all registration needs.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// RunWorker connects to the coordinator at addr, registers, and
// simulates realizations with the given factory-produced routine until
// the coordinator says stop or ctx is cancelled. It implements the
// worker half of the protocol; the paper's analogue is an MPI rank
// executing the user program. Transport faults are survived per
// DefaultRetryPolicy: calls are retried with exponential backoff and
// the connection is re-established after a loss, while sequence
// numbers keep redelivered pushes from double-counting moments.
func RunWorker(ctx context.Context, addr string, factory core.Factory) error {
	return RunNamedWorker(ctx, addr, "", factory)
}

// RunNamedWorker is RunWorker carrying a workload identity that the
// coordinator verifies at registration (when its JobSpec names one).
func RunNamedWorker(ctx context.Context, addr, workloadName string, factory core.Factory) error {
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Workload: workloadName}, factory)
	return err
}

// WorkerOptions tunes RunWorkerOpts. The zero value retries per
// DefaultRetryPolicy. Deprecated in favor of WorkerConfig/RetryPolicy;
// kept for the constant-delay startup-race semantics it always had.
type WorkerOptions struct {
	// DialAttempts is the number of connection attempts before giving
	// up (default 1). On a real cluster workers often start before the
	// coordinator's listener is up; retrying makes job submission
	// order-independent.
	DialAttempts int
	// RetryDelay is the pause between attempts (default 500 ms).
	RetryDelay time.Duration
	// DialTimeout bounds each attempt (default 5 s).
	DialTimeout time.Duration
}

// RunWorkerOpts is RunWorker with explicit connection options.
func RunWorkerOpts(ctx context.Context, addr string, factory core.Factory, opts WorkerOptions) error {
	policy := RetryPolicy{
		MaxAttempts: opts.DialAttempts,
		BaseDelay:   opts.RetryDelay,
		MaxDelay:    opts.RetryDelay,
		Multiplier:  1, // legacy semantics: constant-delay dial retries
		DialTimeout: opts.DialTimeout,
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = 500 * time.Millisecond
		policy.MaxDelay = 500 * time.Millisecond
	}
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Retry: policy}, factory)
	return err
}

// RunResilientWorker is the full-featured worker: it registers
// idempotently (a retried Register after a lost reply reclaims the same
// processor index), simulates realizations, and pushes subtotal
// snapshots carrying monotonic sequence numbers so the coordinator can
// deduplicate redeliveries — at-least-once delivery, exactly-once
// merge. The snapshot of a push is captured once and the identical
// payload is re-sent on every retry.
func RunResilientWorker(ctx context.Context, addr string, cfg WorkerConfig, factory core.Factory) (rep WorkerReport, err error) {
	if factory == nil {
		return rep, errors.New("cluster: nil realization factory")
	}
	if cfg.Hostname == "" {
		cfg.Hostname, _ = os.Hostname()
		if cfg.Hostname == "" {
			cfg.Hostname = "worker"
		}
	}
	rc := NewResilientClient(addr, cfg.Retry)
	defer rc.Close()
	defer func() {
		st := rc.Stats()
		rep.Retries, rep.Reconnects = st.Retries, st.Reconnects
	}()

	var reg RegisterReply
	regArgs := RegisterArgs{Hostname: cfg.Hostname, Workload: cfg.Workload, ClientID: newClientID()}
	if err := rc.Call(ctx, ServiceName+".Register", regArgs, &reg); err != nil {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		return rep, fmt.Errorf("cluster: register: %w", err)
	}
	if reg.Stop {
		return rep, nil
	}
	spec := reg.Spec
	w := reg.Worker
	rep.Worker = w

	realize, err := factory(w)
	if err != nil {
		return rep, fmt.Errorf("cluster: building realization: %w", err)
	}
	stream, err := rng.NewStream(spec.Params, rng.Coord{Experiment: spec.SeqNum, Processor: uint64(w)})
	if err != nil {
		return rep, err
	}

	local := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	var seq uint64

	// push sends the current subtotal under the next sequence number.
	// The snapshot is captured once; retries inside Call redeliver the
	// identical payload, which the coordinator deduplicates by seq.
	push := func(ctx context.Context) (stop bool, err error) {
		seq++
		args := PushArgs{Worker: w, Seq: seq, Snap: local.Snapshot()}
		var pr PushReply
		if err := rc.Call(ctx, ServiceName+".Push", args, &pr); err != nil {
			return false, err
		}
		rep.Pushes++
		local.Reset()
		return pr.Stop, nil
	}

	defer func() {
		// Flush any unsent subtotals, then detach, on a context of
		// their own: the run context may already be cancelled, and the
		// coordinator tolerates vanished workers, so this is bounded
		// best-effort.
		fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if local.N() > 0 {
			_, _ = push(fctx)
		}
		st := rc.Stats()
		var dr DoneReply
		_ = rc.Call(fctx, ServiceName+".Done",
			DoneArgs{Worker: w, Retries: st.Retries, Reconnects: st.Reconnects}, &dr)
	}()

	for k := int64(0); ; k++ {
		if ctx.Err() != nil {
			return rep, nil
		}
		if spec.WorkerQuota > 0 && k >= spec.WorkerQuota {
			return rep, nil // fixed realization budget exhausted
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				return rep, err
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := realize(stream, out); err != nil {
			return rep, fmt.Errorf("cluster: realization %d: %w", k, err)
		}
		if err := local.AddTimed(out, time.Since(t0)); err != nil {
			return rep, err
		}
		rep.Realizations++
		if local.N() >= spec.PassEvery {
			stop, err := push(ctx)
			if err != nil {
				return rep, fmt.Errorf("cluster: push: %w", err)
			}
			if stop {
				return rep, nil
			}
		}
	}
}
