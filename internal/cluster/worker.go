package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
)

// WorkerConfig tunes RunResilientWorker beyond the address.
type WorkerConfig struct {
	// Workload names the realization routine; the coordinator rejects
	// mismatches at registration when its JobSpec also names one.
	Workload string
	// Hostname is informational (default: os.Hostname).
	Hostname string
	// Retry governs reconnect/retry behavior; the zero value uses
	// DefaultRetryPolicy.
	Retry RetryPolicy

	// Registry, if non-nil, receives the worker-side series: retries,
	// reconnects, realization and push-round-trip timing, labeled with
	// the assigned processor index. Serve it with obs.Serve (the
	// parmonc worker --http flag) to watch a worker live.
	Registry *obs.Registry

	// Journal, if non-nil, receives worker-side run events (register,
	// push, done) with sequence numbers and retry attribution. The
	// caller owns the journal and closes it after the session.
	Journal *obs.Journal
}

// workerObs bundles the worker-side instrumentation; nil disables it.
type workerObs struct {
	realizations *obs.Counter
	pushes       *obs.Counter
	realizeSec   *obs.Histogram
	pushSec      *obs.Histogram
}

// newWorkerObs registers the worker series once the processor index is
// known (it is the label distinguishing co-hosted workers). Retries
// and reconnects are read straight off the resilient client at scrape
// time, so the series stay current mid-backoff without touching the
// worker loop.
func newWorkerObs(reg *obs.Registry, w int, rc *ResilientClient) *workerObs {
	if reg == nil {
		return nil
	}
	label := obs.L("worker", strconv.Itoa(w))
	reg.GaugeFunc("parmonc_worker_retries", "RPC attempts beyond the first.",
		func() float64 { return float64(rc.Stats().Retries) }, label)
	reg.GaugeFunc("parmonc_worker_reconnects", "Dials beyond the first successful one.",
		func() float64 { return float64(rc.Stats().Reconnects) }, label)
	return &workerObs{
		realizations: reg.Counter("parmonc_worker_realizations_total", "Realizations simulated by this worker.", label),
		pushes:       reg.Counter("parmonc_worker_pushes_total", "Subtotal pushes acknowledged by the coordinator.", label),
		realizeSec: reg.Histogram("parmonc_worker_realization_seconds", "Wall time of one realization.",
			obs.ExpBuckets(1e-6, 4, 16), label),
		pushSec: reg.Histogram("parmonc_worker_push_seconds", "Round-trip time of one push RPC, retries and backoff included.",
			obs.ExpBuckets(1e-4, 4, 12), label),
	}
}

// WorkerReport summarizes one worker session: how much it simulated
// and how much resilience work the transport needed. The same counters
// reach the coordinator's collector metrics via Done.
type WorkerReport struct {
	Worker       int   // assigned processor index (0 if never registered)
	Realizations int64 // realizations simulated
	Pushes       int64 // subtotal snapshots acknowledged by the coordinator
	Retries      int64 // RPC attempts beyond the first
	Reconnects   int64 // dials beyond the first successful one
}

// newClientID returns a random identity for idempotent registration.
func newClientID() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a time-derived identity; uniqueness, not
		// secrecy, is all registration needs.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// RunWorker connects to the coordinator at addr, registers, and
// simulates realizations with the given factory-produced routine until
// the coordinator says stop or ctx is cancelled. It implements the
// worker half of the protocol; the paper's analogue is an MPI rank
// executing the user program. Transport faults are survived per
// DefaultRetryPolicy: calls are retried with exponential backoff and
// the connection is re-established after a loss, while sequence
// numbers keep redelivered pushes from double-counting moments.
func RunWorker(ctx context.Context, addr string, factory core.Factory) error {
	return RunNamedWorker(ctx, addr, "", factory)
}

// RunNamedWorker is RunWorker carrying a workload identity that the
// coordinator verifies at registration (when its JobSpec names one).
func RunNamedWorker(ctx context.Context, addr, workloadName string, factory core.Factory) error {
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Workload: workloadName}, factory)
	return err
}

// WorkerOptions tunes RunWorkerOpts. The zero value retries per
// DefaultRetryPolicy. Deprecated in favor of WorkerConfig/RetryPolicy;
// kept for the constant-delay startup-race semantics it always had.
type WorkerOptions struct {
	// DialAttempts is the number of connection attempts before giving
	// up (default 1). On a real cluster workers often start before the
	// coordinator's listener is up; retrying makes job submission
	// order-independent.
	DialAttempts int
	// RetryDelay is the pause between attempts (default 500 ms).
	RetryDelay time.Duration
	// DialTimeout bounds each attempt (default 5 s).
	DialTimeout time.Duration
}

// RunWorkerOpts is RunWorker with explicit connection options.
func RunWorkerOpts(ctx context.Context, addr string, factory core.Factory, opts WorkerOptions) error {
	policy := RetryPolicy{
		MaxAttempts: opts.DialAttempts,
		BaseDelay:   opts.RetryDelay,
		MaxDelay:    opts.RetryDelay,
		Multiplier:  1, // legacy semantics: constant-delay dial retries
		DialTimeout: opts.DialTimeout,
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = 500 * time.Millisecond
		policy.MaxDelay = 500 * time.Millisecond
	}
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Retry: policy}, factory)
	return err
}

// RunResilientWorker is the full-featured worker: it registers
// idempotently (a retried Register after a lost reply reclaims the same
// processor index), simulates realizations, and pushes subtotal
// snapshots carrying monotonic sequence numbers so the coordinator can
// deduplicate redeliveries — at-least-once delivery, exactly-once
// merge. The snapshot of a push is captured once and the identical
// payload is re-sent on every retry.
func RunResilientWorker(ctx context.Context, addr string, cfg WorkerConfig, factory core.Factory) (rep WorkerReport, err error) {
	if factory == nil {
		return rep, errors.New("cluster: nil realization factory")
	}
	if cfg.Hostname == "" {
		cfg.Hostname, _ = os.Hostname()
		if cfg.Hostname == "" {
			cfg.Hostname = "worker"
		}
	}
	rc := NewResilientClient(addr, cfg.Retry)
	defer rc.Close()
	defer func() {
		st := rc.Stats()
		rep.Retries, rep.Reconnects = st.Retries, st.Reconnects
	}()

	var reg RegisterReply
	regArgs := RegisterArgs{Hostname: cfg.Hostname, Workload: cfg.Workload, ClientID: newClientID()}
	if err := rc.Call(ctx, ServiceName+".Register", regArgs, &reg); err != nil {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		return rep, fmt.Errorf("cluster: register: %w", err)
	}
	if reg.Stop {
		return rep, nil
	}
	spec := reg.Spec
	w := reg.Worker
	rep.Worker = w
	wo := newWorkerObs(cfg.Registry, w, rc)
	if cfg.Journal != nil {
		cfg.Journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
			"addr": addr, "workload": cfg.Workload,
		}})
		defer func() {
			st := rc.Stats()
			cfg.Journal.Record(obs.Event{Kind: "done", Worker: w, Samples: rep.Realizations,
				Fields: map[string]any{"pushes": rep.Pushes, "retries": st.Retries, "reconnects": st.Reconnects}})
		}()
	}

	realize, err := factory(w)
	if err != nil {
		return rep, fmt.Errorf("cluster: building realization: %w", err)
	}
	stream, err := rng.NewStream(spec.Params, rng.Coord{Experiment: spec.SeqNum, Processor: uint64(w)})
	if err != nil {
		return rep, err
	}

	local := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	var seq uint64

	// push sends the current subtotal under the next sequence number.
	// The snapshot is captured once; retries inside Call redeliver the
	// identical payload, which the coordinator deduplicates by seq.
	push := func(ctx context.Context) (stop bool, err error) {
		seq++
		args := PushArgs{Worker: w, Seq: seq, Snap: local.Snapshot()}
		var pr PushReply
		t0 := time.Now()
		if err := rc.Call(ctx, ServiceName+".Push", args, &pr); err != nil {
			return false, err
		}
		rep.Pushes++
		if wo != nil {
			wo.pushes.Inc()
			wo.pushSec.Observe(time.Since(t0).Seconds())
		}
		if cfg.Journal != nil {
			cfg.Journal.Record(obs.Event{Kind: "push", Worker: w, Seq: seq,
				Samples: args.Snap.N, Elapsed: time.Since(t0)})
		}
		local.Reset()
		return pr.Stop, nil
	}

	defer func() {
		// Flush any unsent subtotals, then detach, on a context of
		// their own: the run context may already be cancelled, and the
		// coordinator tolerates vanished workers, so this is bounded
		// best-effort.
		fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if local.N() > 0 {
			_, _ = push(fctx)
		}
		st := rc.Stats()
		var dr DoneReply
		_ = rc.Call(fctx, ServiceName+".Done",
			DoneArgs{Worker: w, Retries: st.Retries, Reconnects: st.Reconnects}, &dr)
	}()

	for k := int64(0); ; k++ {
		if ctx.Err() != nil {
			return rep, nil
		}
		if spec.WorkerQuota > 0 && k >= spec.WorkerQuota {
			return rep, nil // fixed realization budget exhausted
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				return rep, err
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := realize(stream, out); err != nil {
			return rep, fmt.Errorf("cluster: realization %d: %w", k, err)
		}
		elapsed := time.Since(t0)
		if err := local.AddTimed(out, elapsed); err != nil {
			return rep, err
		}
		rep.Realizations++
		if wo != nil {
			wo.realizations.Inc()
			wo.realizeSec.Observe(elapsed.Seconds())
		}
		if local.N() >= spec.PassEvery {
			stop, err := push(ctx)
			if err != nil {
				return rep, fmt.Errorf("cluster: push: %w", err)
			}
			if stop {
				return rep, nil
			}
		}
	}
}
