package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/workload"
)

// WorkerConfig tunes RunResilientWorker beyond the address.
type WorkerConfig struct {
	// Workload is the parameter-resolved identity of the realization
	// routine this worker runs; the coordinator rejects any identity
	// mismatch at registration when its JobSpec also carries one. Use
	// workload.Named for a name-only (legacy) identity.
	Workload workload.Identity
	// Hostname is informational (default: os.Hostname).
	Hostname string
	// Retry governs reconnect/retry behavior; the zero value uses
	// DefaultRetryPolicy.
	Retry RetryPolicy

	// Registry, if non-nil, receives the worker-side series: retries,
	// reconnects, realization and push-round-trip timing, labeled with
	// the assigned processor index. Serve it with obs.Serve (the
	// parmonc worker --http flag) to watch a worker live.
	Registry *obs.Registry

	// Journal, if non-nil, receives worker-side run events (register,
	// push, done) with sequence numbers and retry attribution. The
	// caller owns the journal and closes it after the session.
	Journal *obs.Journal
}

// workerObs bundles the worker-side instrumentation; nil disables it.
type workerObs struct {
	realizations *obs.Counter
	pushes       *obs.Counter
	realizeSec   *obs.Histogram
	pushSec      *obs.Histogram
}

// newWorkerObs registers the worker series once the processor index is
// known (it is the label distinguishing co-hosted workers). Retries
// and reconnects are read straight off the resilient client at scrape
// time, so the series stay current mid-backoff without touching the
// worker loop.
func newWorkerObs(reg *obs.Registry, w int, rc *ResilientClient) *workerObs {
	if reg == nil {
		return nil
	}
	label := obs.L("worker", strconv.Itoa(w))
	reg.GaugeFunc("parmonc_worker_retries", "RPC attempts beyond the first.",
		func() float64 { return float64(rc.Stats().Retries) }, label)
	reg.GaugeFunc("parmonc_worker_reconnects", "Dials beyond the first successful one.",
		func() float64 { return float64(rc.Stats().Reconnects) }, label)
	return &workerObs{
		realizations: reg.Counter("parmonc_worker_realizations_total", "Realizations simulated by this worker.", label),
		pushes:       reg.Counter("parmonc_worker_pushes_total", "Subtotal pushes acknowledged by the coordinator.", label),
		realizeSec: reg.Histogram("parmonc_worker_realization_seconds", "Wall time of one realization.",
			obs.ExpBuckets(1e-6, 4, 16), label),
		pushSec: reg.Histogram("parmonc_worker_push_seconds", "Round-trip time of one push RPC, retries and backoff included.",
			obs.ExpBuckets(1e-4, 4, 12), label),
	}
}

// WorkerReport summarizes one worker session: how much it simulated
// and how much resilience work the transport needed. The same counters
// reach the coordinator's collector metrics via Done.
type WorkerReport struct {
	Worker       int   // assigned worker index (0 if never registered)
	Realizations int64 // realizations simulated
	Pushes       int64 // subtotal snapshots acknowledged by the coordinator
	Leases       int64 // leases fully completed
	Retries      int64 // RPC attempts beyond the first
	Reconnects   int64 // dials beyond the first successful one
}

// newClientID returns a random identity for idempotent registration.
func newClientID() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a time-derived identity; uniqueness, not
		// secrecy, is all registration needs.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// RunWorker connects to the coordinator at addr, registers, and
// simulates realizations with the given factory-produced routine until
// the coordinator says stop or ctx is cancelled. It implements the
// worker half of the protocol; the paper's analogue is an MPI rank
// executing the user program. Transport faults are survived per
// DefaultRetryPolicy: calls are retried with exponential backoff and
// the connection is re-established after a loss, while sequence
// numbers keep redelivered pushes from double-counting moments.
func RunWorker(ctx context.Context, addr string, factory core.Factory) error {
	return RunNamedWorker(ctx, addr, "", factory)
}

// RunNamedWorker is RunWorker carrying a name-only workload identity
// that the coordinator verifies at registration (when its JobSpec names
// one). Full parameter-fingerprint checking needs WorkerConfig.Workload
// set to a resolved workload.Identity via RunResilientWorker.
func RunNamedWorker(ctx context.Context, addr, workloadName string, factory core.Factory) error {
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Workload: workload.Named(workloadName)}, factory)
	return err
}

// WorkerOptions tunes RunWorkerOpts. The zero value retries per
// DefaultRetryPolicy. Deprecated in favor of WorkerConfig/RetryPolicy;
// kept for the constant-delay startup-race semantics it always had.
type WorkerOptions struct {
	// DialAttempts is the number of connection attempts before giving
	// up (default 1). On a real cluster workers often start before the
	// coordinator's listener is up; retrying makes job submission
	// order-independent.
	DialAttempts int
	// RetryDelay is the pause between attempts (default 500 ms).
	RetryDelay time.Duration
	// DialTimeout bounds each attempt (default 5 s).
	DialTimeout time.Duration
}

// RunWorkerOpts is RunWorker with explicit connection options.
func RunWorkerOpts(ctx context.Context, addr string, factory core.Factory, opts WorkerOptions) error {
	policy := RetryPolicy{
		MaxAttempts: opts.DialAttempts,
		BaseDelay:   opts.RetryDelay,
		MaxDelay:    opts.RetryDelay,
		Multiplier:  1, // legacy semantics: constant-delay dial retries
		DialTimeout: opts.DialTimeout,
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = 500 * time.Millisecond
		policy.MaxDelay = 500 * time.Millisecond
	}
	_, err := RunResilientWorker(ctx, addr, WorkerConfig{Retry: policy}, factory)
	return err
}

// errWorkerStopped is the internal signal that the coordinator told
// this session to stop during a re-register.
var errWorkerStopped = errors.New("cluster: coordinator said stop")

// RunResilientWorker is the full-featured worker: it registers
// idempotently (a retried Register after a lost reply reclaims the same
// worker index and epoch), then loops acquiring leases — contiguous
// windows of realization substreams — and simulating them, pushing
// subtotal snapshots every PassEvery realizations and at every lease
// boundary. Pushes carry monotonic sequence numbers so the coordinator
// can deduplicate redeliveries (at-least-once delivery, exactly-once
// merge) plus the worker's registration epoch and lease progress, so a
// session the coordinator has declared dead is fenced instead of
// double-merged. A fenced worker abandons its local subtotals (the
// lease remainder has been reissued elsewhere), re-registers into a
// fresh epoch and keeps working. When the job defines a heartbeat
// interval, a background loop proves liveness between pushes with the
// explicit Heartbeat RPC — so a slow-but-alive worker is never pruned.
func RunResilientWorker(ctx context.Context, addr string, cfg WorkerConfig, factory core.Factory) (rep WorkerReport, err error) {
	if factory == nil {
		return rep, errors.New("cluster: nil realization factory")
	}
	if cfg.Hostname == "" {
		cfg.Hostname, _ = os.Hostname()
		if cfg.Hostname == "" {
			cfg.Hostname = "worker"
		}
	}
	rc := NewResilientClient(addr, cfg.Retry)
	defer rc.Close()
	defer func() {
		st := rc.Stats()
		rep.Retries, rep.Reconnects = st.Retries, st.Reconnects
	}()

	var reg RegisterReply
	regArgs := RegisterArgs{Hostname: cfg.Hostname, Workload: cfg.Workload, ClientID: newClientID()}
	if err := rc.Call(ctx, ServiceName+".Register", regArgs, &reg); err != nil {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		return rep, fmt.Errorf("cluster: register: %w", err)
	}
	if reg.Stop {
		return rep, nil
	}
	spec := reg.Spec
	w := reg.Worker
	rep.Worker = w

	// The epoch is the only session state the heartbeat goroutine
	// shares with the main loop; it changes on re-registration.
	var sessMu sync.Mutex
	epoch := reg.Epoch
	getEpoch := func() uint64 {
		sessMu.Lock()
		defer sessMu.Unlock()
		return epoch
	}
	setEpoch := func(e uint64) {
		sessMu.Lock()
		defer sessMu.Unlock()
		epoch = e
	}
	// lastContact is when this session last completed any RPC, so the
	// heartbeat loop only speaks up when the main loop has gone quiet.
	var lastContact atomic.Int64
	touch := func() { lastContact.Store(time.Now().UnixNano()) }
	touch()

	wo := newWorkerObs(cfg.Registry, w, rc)
	if cfg.Journal != nil {
		cfg.Journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
			"addr": addr, "workload": cfg.Workload.Fingerprint(), "epoch": reg.Epoch,
		}})
		defer func() {
			st := rc.Stats()
			cfg.Journal.Record(obs.Event{Kind: "done", Worker: w, Samples: rep.Realizations,
				Fields: map[string]any{"pushes": rep.Pushes, "leases": rep.Leases,
					"retries": st.Retries, "reconnects": st.Reconnects}})
		}()
	}

	realize, err := factory(w)
	if err != nil {
		return rep, fmt.Errorf("cluster: building realization: %w", err)
	}

	local := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	var seq uint64

	// Heartbeats run on their own client and goroutine: the resilient
	// client is single-caller, and a heartbeat must get through while
	// the main loop is blocked inside a long realization or a retrying
	// push.
	if spec.Heartbeat > 0 {
		hctx, hcancel := context.WithCancel(context.Background())
		hbDone := make(chan struct{})
		defer func() { hcancel(); <-hbDone }()
		hb := NewResilientClient(addr, cfg.Retry)
		period := spec.Heartbeat / 2
		if period <= 0 {
			period = spec.Heartbeat
		}
		go func() {
			defer close(hbDone)
			defer hb.Close()
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-hctx.Done():
					return
				case <-tick.C:
					if time.Duration(time.Now().UnixNano()-lastContact.Load()) < period {
						continue // the main loop is talking; no need
					}
					var hr HeartbeatReply
					if err := hb.Call(hctx, ServiceName+".Heartbeat",
						HeartbeatArgs{Worker: w, Epoch: getEpoch()}, &hr); err == nil && !hr.Fenced {
						touch()
					}
				}
			}
		}()
	}

	// push sends the current subtotal under the next sequence number,
	// stamped with the session epoch and the lease progress it
	// advances. The snapshot is captured once; retries inside Call
	// redeliver the identical payload, which the coordinator
	// deduplicates by seq.
	push := func(ctx context.Context, leaseID uint64, done int64) (stop, fenced bool, err error) {
		seq++
		args := PushArgs{Worker: w, Epoch: getEpoch(), Seq: seq, Lease: leaseID, Done: done, Snap: local.Snapshot()}
		var pr PushReply
		t0 := time.Now()
		if err := rc.Call(ctx, ServiceName+".Push", args, &pr); err != nil {
			return false, false, err
		}
		touch()
		local.Reset()
		if pr.Fenced {
			return false, true, nil
		}
		rep.Pushes++
		if wo != nil {
			wo.pushes.Inc()
			wo.pushSec.Observe(time.Since(t0).Seconds())
		}
		if cfg.Journal != nil {
			cfg.Journal.Record(obs.Event{Kind: "push", Worker: w, Seq: seq,
				Samples: args.Snap.N, Elapsed: time.Since(t0)})
		}
		return pr.Stop, false, nil
	}

	// rejoin re-registers after a fence: same ClientID, so the
	// coordinator re-admits this process under the same index with a
	// bumped epoch and a fresh sequence space. Local subtotals were
	// already abandoned — the unmerged window is someone else's lease
	// now.
	rejoin := func(ctx context.Context) error {
		var rr RegisterReply
		if err := rc.Call(ctx, ServiceName+".Register", regArgs, &rr); err != nil {
			return err
		}
		if rr.Stop {
			return errWorkerStopped
		}
		setEpoch(rr.Epoch)
		seq = 0
		local.Reset()
		touch()
		if cfg.Journal != nil {
			cfg.Journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
				"addr": addr, "workload": cfg.Workload.Fingerprint(), "epoch": rr.Epoch, "rejoin": true,
			}})
		}
		return nil
	}

	defer func() {
		// Detach on a context of its own: the run context may already
		// be cancelled, and the coordinator tolerates vanished workers,
		// so this is bounded best-effort. Done releases any lease this
		// worker still holds; the coordinator reissues the remainder.
		fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		st := rc.Stats()
		var dr DoneReply
		_ = rc.Call(fctx, ServiceName+".Done",
			DoneArgs{Worker: w, Retries: st.Retries, Reconnects: st.Reconnects}, &dr)
	}()

	// runLease simulates one lease window, pushing every PassEvery
	// realizations and at the window boundary so the coordinator's
	// ledger sees the lease complete.
	runLease := func(l collect.Lease) (stop, fenced bool, err error) {
		stream, err := rng.NewStream(spec.Params, rng.Coord{
			Experiment: spec.SeqNum, Processor: l.Proc, Realization: l.Start,
		})
		if err != nil {
			return false, false, err
		}
		local.Reset()
		var done int64
		for k := int64(0); k < l.Count; k++ {
			if ctx.Err() != nil {
				// Cancelled mid-window: flush the merged-prefix delta on
				// a bounded context so the acked ledger matches what the
				// coordinator reissues, then let the deferred Done
				// release the rest.
				if local.N() > 0 {
					fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					_, _, _ = push(fctx, l.ID, done)
					cancel()
				}
				return true, false, nil
			}
			if k > 0 {
				if err := stream.NextRealization(); err != nil {
					return false, false, err
				}
			}
			for i := range out {
				out[i] = 0
			}
			t0 := time.Now()
			if err := realize(stream, out); err != nil {
				return false, false, fmt.Errorf("cluster: realization %d of %v: %w", k, l, err)
			}
			elapsed := time.Since(t0)
			if err := local.AddTimed(out, elapsed); err != nil {
				return false, false, err
			}
			done++
			rep.Realizations++
			if wo != nil {
				wo.realizations.Inc()
				wo.realizeSec.Observe(elapsed.Seconds())
			}
			if local.N() >= spec.PassEvery || k == l.Count-1 {
				st, fenced, err := push(ctx, l.ID, done)
				if err != nil {
					return false, false, fmt.Errorf("cluster: push: %w", err)
				}
				if fenced {
					return false, true, nil
				}
				if st && k < l.Count-1 {
					return true, false, nil
				}
				if st {
					stop = true
				}
			}
		}
		rep.Leases++
		return stop, false, nil
	}

	pollDelay := spec.Heartbeat
	if pollDelay <= 0 {
		pollDelay = 200 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			return rep, nil
		}
		var aq AcquireReply
		if err := rc.Call(ctx, ServiceName+".Acquire", AcquireArgs{Worker: w, Epoch: getEpoch()}, &aq); err != nil {
			if ctx.Err() != nil {
				return rep, nil
			}
			return rep, fmt.Errorf("cluster: acquire: %w", err)
		}
		touch()
		switch {
		case aq.Stop:
			return rep, nil
		case aq.Fenced:
			if err := rejoin(ctx); err != nil {
				if errors.Is(err, errWorkerStopped) || ctx.Err() != nil {
					return rep, nil
				}
				return rep, fmt.Errorf("cluster: re-register: %w", err)
			}
			continue
		case !aq.Granted:
			select {
			case <-ctx.Done():
				return rep, nil
			case <-time.After(pollDelay):
			}
			continue
		}
		stop, fenced, err := runLease(aq.Lease)
		if err != nil {
			return rep, err
		}
		if stop {
			return rep, nil
		}
		if fenced {
			if err := rejoin(ctx); err != nil {
				if errors.Is(err, errWorkerStopped) || ctx.Err() != nil {
					return rep, nil
				}
				return rep, fmt.Errorf("cluster: re-register: %w", err)
			}
		}
	}
}
