package queueing

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (MM1{Lambda: 0.5, Mu: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MM1{
		{Lambda: 0, Mu: 1},
		{Lambda: -1, Mu: 1},
		{Lambda: 1, Mu: 1}, // unstable: ρ = 1
		{Lambda: 2, Mu: 1}, // unstable: ρ > 1
		{Lambda: 0.5, Mu: 1, Warmup: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestExactFormulas(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	if got := q.Rho(); got != 0.5 {
		t.Fatalf("ρ = %g", got)
	}
	if got := q.ExactMeanWait(); got != 1 { // 0.5/(1-0.5)
		t.Fatalf("W_q = %g, want 1", got)
	}
	if got := q.ExactMeanNumber(); got != 1 { // ρ/(1-ρ)
		t.Fatalf("L = %g, want 1", got)
	}
}

func TestBatchMeanWaitArguments(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	if err := q.BatchMeanWait(stream(t), make([]float64, 2)); err == nil {
		t.Fatal("wrong out length accepted")
	}
}

func TestWaitingTimesNonNegative(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1, Warmup: 10, Batch: 100}
	s := stream(t)
	out := make([]float64, 1)
	for i := 0; i < 100; i++ {
		if err := q.BatchMeanWait(s, out); err != nil {
			t.Fatal(err)
		}
		if out[0] < 0 {
			t.Fatalf("negative batch mean wait %g", out[0])
		}
	}
}

func TestMeanWaitMatchesTheory(t *testing.T) {
	// Full pipeline: E W ≈ ρ/(μ−λ). Batch means are biased low by
	// truncation only negligibly with warmup 2000.
	q := MM1{Lambda: 0.6, Mu: 1, Warmup: 2000, Batch: 2000}
	cfg := core.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 400,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return q.BatchMeanWait(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := q.ExactMeanWait() // 0.6/0.4 = 1.5
	got := res.Report.MeanAt(0, 0)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("E W = %g, want %g (±10%%)", got, want)
	}
}

func TestHeavierLoadWaitsLonger(t *testing.T) {
	light := MM1{Lambda: 0.3, Mu: 1, Warmup: 500, Batch: 500}
	heavy := MM1{Lambda: 0.8, Mu: 1, Warmup: 500, Batch: 500}
	s := stream(t)
	out := make([]float64, 1)
	var sumLight, sumHeavy float64
	const reps = 200
	for i := 0; i < reps; i++ {
		if err := light.BatchMeanWait(s, out); err != nil {
			t.Fatal(err)
		}
		sumLight += out[0]
		if err := heavy.BatchMeanWait(s, out); err != nil {
			t.Fatal(err)
		}
		sumHeavy += out[0]
	}
	if sumHeavy <= sumLight {
		t.Fatalf("heavy load mean %g not above light %g", sumHeavy/reps, sumLight/reps)
	}
}

func BenchmarkBatchMeanWait(b *testing.B) {
	q := MM1{Lambda: 0.6, Mu: 1, Warmup: 100, Batch: 100}
	s := stream(b)
	out := make([]float64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.BatchMeanWait(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
