// Package queueing implements an M/M/1 queue simulation — the queuing
// theory application domain the paper lists (Sec. 2.1). The module
// estimates the stationary mean waiting time via the Lindley recursion
//
//	W_{k+1} = max(0, W_k + S_k − A_k),
//
// where S_k ~ Exp(μ) are service times and A_k ~ Exp(λ) inter-arrival
// times. For ρ = λ/μ < 1 the exact stationary mean waiting time is
// W_q = ρ/(μ − λ), so the estimate is verifiable in closed form.
package queueing

import (
	"fmt"

	"parmonc/dist"
)

// MM1 describes an M/M/1 queue.
type MM1 struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate (> Lambda for stability)
	Warmup int     // customers discarded before measuring (default 1000)
	Batch  int     // customers averaged per realization (default 1000)
}

// Validate checks stability and parameter sanity.
func (q MM1) Validate() error {
	if q.Lambda <= 0 {
		return fmt.Errorf("queueing: arrival rate %g must be positive", q.Lambda)
	}
	if q.Mu <= q.Lambda {
		return fmt.Errorf("queueing: service rate %g must exceed arrival rate %g for stability", q.Mu, q.Lambda)
	}
	if q.Warmup < 0 || q.Batch < 0 {
		return fmt.Errorf("queueing: negative warmup or batch")
	}
	return nil
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// ExactMeanWait returns the stationary mean waiting time in queue,
// W_q = ρ/(μ−λ).
func (q MM1) ExactMeanWait() float64 {
	return q.Rho() / (q.Mu - q.Lambda)
}

// ExactMeanNumber returns the stationary mean number in system,
// L = ρ/(1−ρ).
func (q MM1) ExactMeanNumber() float64 {
	rho := q.Rho()
	return rho / (1 - rho)
}

// BatchMeanWait simulates one realization: it runs the Lindley recursion
// through the warmup, then averages the waiting times of one batch of
// customers. Realizations on independent streams are i.i.d. (apart from
// the common warmup bias, which the defaults make negligible), so the
// PARMONC machinery applies directly: out[0] receives the batch mean.
func (q MM1) BatchMeanWait(src dist.Source, out []float64) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if len(out) != 1 {
		return fmt.Errorf("queueing: out has length %d, want 1", len(out))
	}
	warmup := q.Warmup
	if warmup == 0 {
		warmup = 1000
	}
	batch := q.Batch
	if batch == 0 {
		batch = 1000
	}
	w := 0.0
	for k := 0; k < warmup; k++ {
		w = lindleyStep(src, w, q.Lambda, q.Mu)
	}
	var sum float64
	for k := 0; k < batch; k++ {
		w = lindleyStep(src, w, q.Lambda, q.Mu)
		sum += w
	}
	out[0] = sum / float64(batch)
	return nil
}

// SteadyWait runs the Lindley recursion from an empty queue through the
// warmup and returns one (approximately) steady-state waiting time: the
// single-sample counterpart of BatchMeanWait, for estimators — like the
// waiting-time histogram — that need the variate itself rather than a
// batch mean. Parameters should satisfy Validate; the sampler signature
// leaves no room for an error return.
func (q MM1) SteadyWait(src dist.Source) float64 {
	warmup := q.Warmup
	if warmup == 0 {
		warmup = 1000
	}
	w := 0.0
	for k := 0; k < warmup; k++ {
		w = lindleyStep(src, w, q.Lambda, q.Mu)
	}
	return w
}

func lindleyStep(src dist.Source, w, lambda, mu float64) float64 {
	s := dist.Exponential(src, mu)
	a := dist.Exponential(src, lambda)
	w = w + s - a
	if w < 0 {
		return 0
	}
	return w
}
