package collect

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Invalid-snapshot rejection: every malformed payload is refused with a
// precise error, counted in both rejected_snapshots and the dedicated
// pushes_invalid metric, and reported as a push_invalid journal event.
// The error texts are part of the operator-facing surface (they end up
// in worker logs on the far side of an RPC), so they are table-tested
// verbatim.

func invalidMeta() store.RunMeta {
	return store.RunMeta{
		SeqNum: 1, Nrow: 1, Ncol: 2, Workers: 1,
		Params: rng.DefaultParams(), Gamma: stat.DefaultConfidenceCoefficient,
		StartedAt: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
	}
}

// validSnap returns a well-formed 1×2 one-realization snapshot.
func validSnap() stat.Snapshot {
	a := stat.New(1, 2)
	if err := a.Add([]float64{1, 2}); err != nil {
		panic(err)
	}
	return a.Snapshot()
}

func TestPushInvalidSnapshotTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*stat.Snapshot)
		wantErr string
	}{
		{
			name:    "nan_sum",
			mutate:  func(s *stat.Snapshot) { s.Sum[1] = math.NaN() },
			wantErr: "stat: snapshot Sum[1] = NaN is not finite",
		},
		{
			name:    "pos_inf_sum",
			mutate:  func(s *stat.Snapshot) { s.Sum[0] = math.Inf(1) },
			wantErr: "stat: snapshot Sum[0] = +Inf is not finite",
		},
		{
			name:    "neg_inf_sum",
			mutate:  func(s *stat.Snapshot) { s.Sum[0] = math.Inf(-1) },
			wantErr: "stat: snapshot Sum[0] = -Inf is not finite",
		},
		{
			name:    "nan_sum2",
			mutate:  func(s *stat.Snapshot) { s.Sum2[0] = math.NaN() },
			wantErr: "stat: snapshot Sum2[0] = NaN is not finite",
		},
		{
			name:    "inf_sum2",
			mutate:  func(s *stat.Snapshot) { s.Sum2[1] = math.Inf(1) },
			wantErr: "stat: snapshot Sum2[1] = +Inf is not finite",
		},
		{
			name:    "negative_sum2",
			mutate:  func(s *stat.Snapshot) { s.Sum2[1] = -4 },
			wantErr: "stat: snapshot Sum2[1] = -4 is negative",
		},
		{
			name:    "negative_volume",
			mutate:  func(s *stat.Snapshot) { s.N = -3 },
			wantErr: "stat: snapshot has negative sample volume -3",
		},
		{
			name:    "negative_sim_time",
			mutate:  func(s *stat.Snapshot) { s.SimTimeNS = -1 },
			wantErr: "stat: snapshot has negative simulation time -1",
		},
		{
			name:    "truncated_slices",
			mutate:  func(s *stat.Snapshot) { s.Sum = s.Sum[:1] },
			wantErr: "stat: snapshot slices have lengths 1/2, want 2",
		},
		{
			name:    "zero_dimensions",
			mutate:  func(s *stat.Snapshot) { s.Ncol = 0 },
			wantErr: "stat: snapshot has invalid dimensions 1×0",
		},
		{
			name: "phantom_moments",
			mutate: func(s *stat.Snapshot) {
				// Claims no samples but carries moment mass — merging it
				// would shift the totals without advancing N.
				s.N = 0
				s.SimTimeNS = 0
			},
			wantErr: "stat: snapshot has zero sample volume but nonzero moment sums (Sum[0] = 1, Sum2[0] = 1)",
		},
		{
			name:    "wrong_dimensions",
			mutate:  func(s *stat.Snapshot) { s.Nrow, s.Ncol = 2, 1 },
			wantErr: "stat: snapshot is 2×1, run is 1×2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var events []Event
			eng, err := New(nil, invalidMeta(), Config{Hook: func(e Event) { events = append(events, e) }})
			if err != nil {
				t.Fatal(err)
			}
			eng.Register(0)

			snap := validSnap()
			tc.mutate(&snap)
			err = eng.Push(0, snap)
			if err == nil {
				t.Fatalf("push of %s snapshot succeeded", tc.name)
			}
			want := "collect: rejecting snapshot from worker 0: " + tc.wantErr
			if err.Error() != want {
				t.Errorf("error text drifted:\n got %q\nwant %q", err.Error(), want)
			}
			m := eng.Metrics()
			if m.RejectedSnapshots != 1 || m.PushesInvalid != 1 || m.Merges != 0 {
				t.Errorf("metrics = rejected %d, invalid %d, merges %d; want 1, 1, 0",
					m.RejectedSnapshots, m.PushesInvalid, m.Merges)
			}
			if eng.N() != 0 {
				t.Errorf("N = %d after rejected push", eng.N())
			}
			var kinds []string
			for _, e := range events {
				kinds = append(kinds, e.Kind.String())
			}
			if got := strings.Join(kinds, " "); got != "push push_invalid" {
				t.Errorf("events = %q, want %q", got, "push push_invalid")
			}

			// A valid push afterwards still merges: rejection is not sticky.
			if err := eng.Push(0, validSnap()); err != nil {
				t.Fatal(err)
			}
			if eng.N() != 1 {
				t.Fatalf("N = %d after valid push", eng.N())
			}
		})
	}
}

// TestPushInvalidDistinctFromOtherRejections: unknown-worker and
// lease-ledger rejections do NOT count as invalid payloads — the
// pushes_invalid series isolates data corruption from membership and
// bookkeeping failures.
func TestPushInvalidDistinctFromOtherRejections(t *testing.T) {
	eng, err := New(nil, invalidMeta(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Push(7, validSnap()); err == nil {
		t.Fatal("push from unregistered worker succeeded")
	}
	m := eng.Metrics()
	if m.RejectedSnapshots != 1 || m.PushesInvalid != 0 {
		t.Fatalf("metrics = rejected %d, invalid %d; want 1, 0", m.RejectedSnapshots, m.PushesInvalid)
	}
}

// TestPushInvalidJournalEvent: an invalid push flows through JournalHook
// into the run journal as a push_invalid record.
func TestPushInvalidJournalEvent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := obs.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nil, invalidMeta(), Config{Hook: JournalHook(j)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(3)
	snap := validSnap()
	snap.Sum[0] = math.NaN()
	if err := eng.Push(3, snap); err == nil {
		t.Fatal("push of NaN snapshot succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Kind   string `json:"event"`
			Worker int    `json:"worker"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if rec.Kind == "push_invalid" && rec.Worker == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("journal has no push_invalid event for worker 3:\n%s", raw)
	}
}

// TestValidateFastPathAcceptsOverflowingAggregate: the striped
// aggregate check in Snapshot.Validate may overflow to +Inf on huge but
// finite element values; the element-wise slow path must then accept
// the snapshot (no false rejection).
func TestValidateFastPathAcceptsOverflowingAggregate(t *testing.T) {
	s := stat.Snapshot{
		Nrow: 1, Ncol: 4,
		Sum:  []float64{math.MaxFloat64, math.MaxFloat64, math.MaxFloat64, math.MaxFloat64},
		Sum2: []float64{math.MaxFloat64, math.MaxFloat64, math.MaxFloat64, math.MaxFloat64},
		N:    1,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("finite snapshot rejected: %v", err)
	}
}
