package collect

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the collector's built-in instrumentation: lock-free atomic
// counters updated on the hot merge path, cheap enough to stay on even
// under the paper's "strictest conditions" (a push per realization).
// Read a consistent view with Collector.Metrics.
type Metrics struct {
	pushes          atomic.Int64 // Push calls received (incl. rejected)
	rejected        atomic.Int64 // snapshots rejected before merging
	merges          atomic.Int64 // snapshots merged into the total
	saves           atomic.Int64 // averaging + save cycles completed
	saveNanos       atomic.Int64 // cumulative save latency
	workerSnapshots atomic.Int64 // per-worker snapshot files written
	registered      atomic.Int64 // workers ever registered
	pruned          atomic.Int64 // workers dropped for silence
	resumedSamples  atomic.Int64 // sample volume inherited from resume

	redelivered      atomic.Int64 // duplicate pushes deduplicated by sequence number
	workerRetries    atomic.Int64 // RPC retries reported by detaching workers
	workerReconnects atomic.Int64 // reconnects reported by detaching workers
}

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Pushes:            m.pushes.Load(),
		RejectedSnapshots: m.rejected.Load(),
		Merges:            m.merges.Load(),
		Saves:             m.saves.Load(),
		SaveLatency:       time.Duration(m.saveNanos.Load()),
		WorkerSnapshots:   m.workerSnapshots.Load(),
		RegisteredWorkers: m.registered.Load(),
		PrunedWorkers:     m.pruned.Load(),
		ResumedSamples:    m.resumedSamples.Load(),
		Redeliveries:      m.redelivered.Load(),
		WorkerRetries:     m.workerRetries.Load(),
		WorkerReconnects:  m.workerReconnects.Load(),
	}
}

// MetricsSnapshot is a point-in-time copy of the collector counters,
// surfaced through core.Result, the cluster.Coordinator status API and
// the parmonc --stats flag.
type MetricsSnapshot struct {
	Pushes            int64         // subtotal pushes received
	RejectedSnapshots int64         // pushes rejected (unknown worker or invalid snapshot)
	Merges            int64         // snapshots merged into the running total
	Saves             int64         // averaging + save cycles
	SaveLatency       time.Duration // cumulative time spent saving
	WorkerSnapshots   int64         // per-worker snapshot files written
	RegisteredWorkers int64         // workers ever registered
	PrunedWorkers     int64         // workers dropped for silence
	ResumedSamples    int64         // sample volume inherited from a resumed run
	Redeliveries      int64         // duplicate pushes acknowledged without merging
	WorkerRetries     int64         // RPC retries reported by detaching workers
	WorkerReconnects  int64         // reconnects reported by detaching workers
}

// MeanSaveLatency returns the average duration of one save cycle.
func (s MetricsSnapshot) MeanSaveLatency() time.Duration {
	if s.Saves == 0 {
		return 0
	}
	return s.SaveLatency / time.Duration(s.Saves)
}

// WriteTo prints the counters as an aligned key-value block (the
// --stats output format).
func (s MetricsSnapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, row := range []struct {
		key string
		val interface{}
	}{
		{"pushes", s.Pushes},
		{"merges", s.Merges},
		{"rejected_snapshots", s.RejectedSnapshots},
		{"saves", s.Saves},
		{"save_latency_total", s.SaveLatency},
		{"save_latency_mean", s.MeanSaveLatency()},
		{"worker_snapshots", s.WorkerSnapshots},
		{"registered_workers", s.RegisteredWorkers},
		{"pruned_workers", s.PrunedWorkers},
		{"resumed_samples", s.ResumedSamples},
		{"redeliveries", s.Redeliveries},
		{"worker_retries", s.WorkerRetries},
		{"worker_reconnects", s.WorkerReconnects},
	} {
		n, err := fmt.Fprintf(w, "%-24s %v\n", row.key, row.val)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// EventKind enumerates collector occurrences delivered to a Hook.
type EventKind int

const (
	EventPush      EventKind = iota // a subtotal push arrived
	EventReject                     // the push was rejected before merging
	EventMerge                      // the push was merged into the total
	EventSave                       // an averaging + save cycle completed
	EventPrune                      // a silent worker was dropped
	EventDuplicate                  // a redelivered push was deduplicated
)

// String returns the event kind's wire-stable name.
func (k EventKind) String() string {
	switch k {
	case EventPush:
		return "push"
	case EventReject:
		return "reject"
	case EventMerge:
		return "merge"
	case EventSave:
		return "save"
	case EventPrune:
		return "prune"
	case EventDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one collector occurrence. Worker is meaningful for push,
// reject, merge and prune; Samples is the snapshot volume (push, reject,
// merge) or the running total (save); Elapsed is the save latency.
type Event struct {
	Kind    EventKind
	Worker  int
	Samples int64
	Elapsed time.Duration
}

// Hook observes collector events. It is called with the collector lock
// held: keep it fast and do not call back into the Collector.
type Hook func(Event)
