package collect

import (
	"fmt"
	"io"
	"time"

	"parmonc/internal/obs"
)

// Metrics is the collector's built-in instrumentation. Since the obs
// subsystem exists the counters live in an obs.Registry — so a running
// coordinator exposes them on /metrics in Prometheus format — but the
// hot merge path still pays exactly one atomic add per counter, cheap
// enough to stay on even under the paper's "strictest conditions" (a
// push per realization). Read a consistent view with Collector.Metrics.
type Metrics struct {
	pushes          *obs.Counter // Push calls received (incl. rejected)
	rejected        *obs.Counter // snapshots rejected before merging
	pushesInvalid   *obs.Counter // rejections caused by an invalid snapshot payload
	merges          *obs.Counter // snapshots merged into the total
	saves           *obs.Counter // averaging + save cycles completed
	saveNanos       *obs.Counter // cumulative save latency
	workerSnapshots *obs.Counter // per-worker snapshot files written
	registered      *obs.Counter // workers ever registered
	pruned          *obs.Counter // workers dropped for silence
	resumedSamples  *obs.Gauge   // sample volume inherited from resume

	redelivered      *obs.Counter // duplicate pushes deduplicated by sequence number
	workerRetries    *obs.Counter // RPC retries reported by detaching workers
	workerReconnects *obs.Counter // reconnects reported by detaching workers

	staleEpoch      *obs.Counter // pushes/heartbeats fenced for a stale epoch or revoked lease
	leasesCompleted *obs.Counter // leases whose full window has merged

	saveSeconds *obs.Histogram // save latency distribution
}

// newMetrics registers the collector series in reg. Registration is
// idempotent per (name, labels), so two collectors sharing a registry
// share counters — which is why production processes run one collector
// per registry.
func newMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		pushes:          reg.Counter("parmonc_collector_pushes_total", "Subtotal pushes received, including rejected ones."),
		rejected:        reg.Counter("parmonc_collector_rejected_snapshots_total", "Pushes rejected before merging (unknown worker or invalid snapshot)."),
		pushesInvalid:   reg.Counter("parmonc_collector_pushes_invalid_total", "Pushes rejected because the snapshot payload was invalid (NaN/Inf or negative moment sums, bad dimensions, inconsistent volume)."),
		merges:          reg.Counter("parmonc_collector_merges_total", "Snapshots merged into the running total (formula (5))."),
		saves:           reg.Counter("parmonc_collector_saves_total", "Averaging and save cycles completed."),
		saveNanos:       reg.Counter("parmonc_collector_save_nanoseconds_total", "Cumulative time spent in save cycles."),
		workerSnapshots: reg.Counter("parmonc_collector_worker_snapshots_total", "Per-worker snapshot files written for manaver."),
		registered:      reg.Counter("parmonc_collector_registered_workers_total", "Workers ever registered."),
		pruned:          reg.Counter("parmonc_collector_pruned_workers_total", "Workers dropped for silence."),
		resumedSamples:  reg.Gauge("parmonc_collector_resumed_samples", "Sample volume inherited from a resumed run."),
		redelivered:     reg.Counter("parmonc_collector_redeliveries_total", "Duplicate pushes acknowledged without merging (sequence-number dedup)."),
		workerRetries:   reg.Counter("parmonc_collector_worker_retries_total", "RPC retries reported by detaching workers."),
		workerReconnects: reg.Counter("parmonc_collector_worker_reconnects_total",
			"Reconnects reported by detaching workers."),
		staleEpoch: reg.Counter("parmonc_collector_stale_epoch_total",
			"Pushes and heartbeats fenced for a stale registration epoch or revoked lease."),
		leasesCompleted: reg.Counter("parmonc_collector_leases_completed_total",
			"Leases whose full realization window has been merged."),
		saveSeconds: reg.Histogram("parmonc_collector_save_seconds", "Save cycle latency in seconds.", obs.DefDurationBuckets()),
	}
}

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Pushes:            m.pushes.Value(),
		RejectedSnapshots: m.rejected.Value(),
		PushesInvalid:     m.pushesInvalid.Value(),
		Merges:            m.merges.Value(),
		Saves:             m.saves.Value(),
		SaveLatency:       time.Duration(m.saveNanos.Value()),
		WorkerSnapshots:   m.workerSnapshots.Value(),
		RegisteredWorkers: m.registered.Value(),
		PrunedWorkers:     m.pruned.Value(),
		ResumedSamples:    int64(m.resumedSamples.Value()),
		Redeliveries:      m.redelivered.Value(),
		WorkerRetries:     m.workerRetries.Value(),
		WorkerReconnects:  m.workerReconnects.Value(),
		StaleEpochPushes:  m.staleEpoch.Value(),
		LeasesCompleted:   m.leasesCompleted.Value(),
	}
}

// MetricsSnapshot is a point-in-time copy of the collector counters,
// surfaced through core.Result, the cluster.Coordinator status API,
// the parmonc --stats flag, and the ops server's /statusz endpoint
// (whence the JSON tags).
type MetricsSnapshot struct {
	Pushes            int64         `json:"pushes"`             // subtotal pushes received
	RejectedSnapshots int64         `json:"rejected_snapshots"` // pushes rejected (unknown worker or invalid snapshot)
	PushesInvalid     int64         `json:"pushes_invalid"`     // rejections caused by an invalid snapshot payload
	Merges            int64         `json:"merges"`             // snapshots merged into the running total
	Saves             int64         `json:"saves"`              // averaging + save cycles
	SaveLatency       time.Duration `json:"save_latency_ns"`    // cumulative time spent saving
	WorkerSnapshots   int64         `json:"worker_snapshots"`   // per-worker snapshot files written
	RegisteredWorkers int64         `json:"registered_workers"` // workers ever registered
	PrunedWorkers     int64         `json:"pruned_workers"`     // workers dropped for silence
	ResumedSamples    int64         `json:"resumed_samples"`    // sample volume inherited from a resumed run
	Redeliveries      int64         `json:"redeliveries"`       // duplicate pushes acknowledged without merging
	WorkerRetries     int64         `json:"worker_retries"`     // RPC retries reported by detaching workers
	WorkerReconnects  int64         `json:"worker_reconnects"`  // reconnects reported by detaching workers
	StaleEpochPushes  int64         `json:"stale_epoch"`        // pushes/heartbeats fenced for a stale epoch or revoked lease
	LeasesCompleted   int64         `json:"leases_completed"`   // leases whose full window has merged
}

// MeanSaveLatency returns the average duration of one save cycle.
func (s MetricsSnapshot) MeanSaveLatency() time.Duration {
	if s.Saves == 0 {
		return 0
	}
	return s.SaveLatency / time.Duration(s.Saves)
}

// WriteTo prints the counters as an aligned key-value block (the
// --stats output format).
func (s MetricsSnapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, row := range []struct {
		key string
		val interface{}
	}{
		{"pushes", s.Pushes},
		{"merges", s.Merges},
		{"rejected_snapshots", s.RejectedSnapshots},
		{"pushes_invalid", s.PushesInvalid},
		{"saves", s.Saves},
		{"save_latency_total", s.SaveLatency},
		{"save_latency_mean", s.MeanSaveLatency()},
		{"worker_snapshots", s.WorkerSnapshots},
		{"registered_workers", s.RegisteredWorkers},
		{"pruned_workers", s.PrunedWorkers},
		{"resumed_samples", s.ResumedSamples},
		{"redeliveries", s.Redeliveries},
		{"worker_retries", s.WorkerRetries},
		{"worker_reconnects", s.WorkerReconnects},
		{"stale_epoch", s.StaleEpochPushes},
		{"leases_completed", s.LeasesCompleted},
	} {
		n, err := fmt.Fprintf(w, "%-24s %v\n", row.key, row.val)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// EventKind enumerates collector occurrences delivered to a Hook.
type EventKind int

const (
	EventPush          EventKind = iota // a subtotal push arrived
	EventReject                         // the push was rejected before merging
	EventMerge                          // the push was merged into the total
	EventSave                           // an averaging + save cycle completed
	EventPrune                          // a silent worker was dropped
	EventDuplicate                      // a redelivered push was deduplicated
	EventStale                          // a push/heartbeat was fenced (stale epoch or revoked lease)
	EventLeaseComplete                  // a lease's full realization window has merged
	EventInvalid                        // the push was rejected because its snapshot payload was invalid
)

// String returns the event kind's wire-stable name.
func (k EventKind) String() string {
	switch k {
	case EventPush:
		return "push"
	case EventReject:
		return "reject"
	case EventMerge:
		return "merge"
	case EventSave:
		return "save"
	case EventPrune:
		return "prune"
	case EventDuplicate:
		return "duplicate"
	case EventStale:
		return "stale_epoch"
	case EventLeaseComplete:
		return "lease_complete"
	case EventInvalid:
		return "push_invalid"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one collector occurrence. Worker is meaningful for push,
// reject, merge, prune, stale_epoch and lease_complete; Samples is the
// snapshot volume (push, reject, merge), the running total (save), or
// the lease window size (lease_complete); Elapsed is the save latency;
// Seq carries the lease ID for stale_epoch and lease_complete.
type Event struct {
	Kind    EventKind
	Worker  int
	Samples int64
	Seq     uint64
	Elapsed time.Duration
}

// Hook observes collector events. Events for one worker's pushes are
// delivered in order (under that worker's shard lock), but pushes from
// different workers run concurrently, so a Hook must be safe for
// concurrent use. Keep it fast and do not call back into the Collector.
type Hook func(Event)

// MultiHook fans one event out to several hooks (nils are skipped), so
// a caller can journal events and still observe them itself.
func MultiHook(hooks ...Hook) Hook {
	live := hooks[:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	fixed := append([]Hook(nil), live...)
	return func(e Event) {
		for _, h := range fixed {
			h(e)
		}
	}
}

// JournalHook adapts collector events into run-journal records. The
// journal's Record never blocks (events are buffered to a background
// writer), so this hook is safe under the collector lock.
func JournalHook(j *obs.Journal) Hook {
	if j == nil {
		return nil
	}
	return func(e Event) {
		j.Record(obs.Event{
			Kind:    e.Kind.String(),
			Worker:  e.Worker,
			Samples: e.Samples,
			Seq:     e.Seq,
			Elapsed: e.Elapsed,
		})
	}
}
