package collect

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// goldenMeta is a minimal valid run description for the in-memory
// engine used by these tests.
func goldenMeta() store.RunMeta {
	return store.RunMeta{
		SeqNum: 1, Nrow: 1, Ncol: 2, MaxSV: 100, Workers: 3,
		Params: rng.DefaultParams(), Gamma: stat.DefaultConfidenceCoefficient,
		StartedAt: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
	}
}

// goldenSnap builds a one-realization subtotal snapshot.
func goldenSnap(t *testing.T) stat.Snapshot {
	t.Helper()
	a := stat.New(1, 2)
	if err := a.Add([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	return a.Snapshot()
}

// TestMetricsWriteToGolden pins the --stats block to the exact bytes
// the pre-obs atomic-counter implementation produced, so migrating the
// counters onto the obs registry cannot drift the operator-facing
// format.
func TestMetricsWriteToGolden(t *testing.T) {
	reg := obs.NewRegistry()
	m := newMetrics(reg)
	m.pushes.Add(10)
	m.merges.Add(7)
	m.rejected.Add(1)
	m.pushesInvalid.Add(1)
	m.saves.Add(2)
	m.saveNanos.Add(int64(3500 * time.Millisecond))
	m.workerSnapshots.Add(4)
	m.registered.Add(3)
	m.pruned.Add(1)
	m.resumedSamples.Set(5)
	m.redelivered.Add(2)
	m.workerRetries.Add(6)
	m.workerReconnects.Add(1)
	m.staleEpoch.Add(3)
	m.leasesCompleted.Add(4)

	const golden = `pushes                   10
merges                   7
rejected_snapshots       1
pushes_invalid           1
saves                    2
save_latency_total       3.5s
save_latency_mean        1.75s
worker_snapshots         4
registered_workers       3
pruned_workers           1
resumed_samples          5
redeliveries             2
worker_retries           6
worker_reconnects        1
stale_epoch              3
leases_completed         4
`
	var b strings.Builder
	n, err := m.snapshot().WriteTo(&b)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("WriteTo drifted:\n got:\n%s\nwant:\n%s", b.String(), golden)
	}
	if n != int64(len(golden)) {
		t.Fatalf("WriteTo returned %d, wrote %d bytes", n, len(golden))
	}
}

// TestMetricsSnapshotJSONGolden pins the JSON field names of
// MetricsSnapshot (the /statusz wire format).
func TestMetricsSnapshotJSONGolden(t *testing.T) {
	snap := MetricsSnapshot{
		Pushes: 10, RejectedSnapshots: 1, PushesInvalid: 1, Merges: 7, Saves: 2,
		SaveLatency: 3500 * time.Millisecond, WorkerSnapshots: 4,
		RegisteredWorkers: 3, PrunedWorkers: 1, ResumedSamples: 5,
		Redeliveries: 2, WorkerRetries: 6, WorkerReconnects: 1,
		StaleEpochPushes: 3, LeasesCompleted: 4,
	}
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"pushes":10,"rejected_snapshots":1,"pushes_invalid":1,"merges":7,"saves":2,` +
		`"save_latency_ns":3500000000,"worker_snapshots":4,"registered_workers":3,` +
		`"pruned_workers":1,"resumed_samples":5,"redeliveries":2,` +
		`"worker_retries":6,"worker_reconnects":1,"stale_epoch":3,"leases_completed":4}`
	if string(got) != golden {
		t.Fatalf("snapshot JSON drifted:\n got %s\nwant %s", got, golden)
	}
}

// TestMetricsOnRegistry: the collector's counters are visible through
// the registry's Prometheus exposition, and both views agree.
func TestMetricsOnRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := New(nil, goldenMeta(), Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		eng.Register(w)
	}
	for w := 0; w < 3; w++ { // 3 workers × 4 pushes
		for k := 0; k < 4; k++ {
			if err := eng.Push(w, goldenSnap(t)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}

	snap := eng.Metrics()
	if snap.Pushes != 12 || snap.Merges != 12 || snap.Saves != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"parmonc_collector_pushes_total 12",
		"parmonc_collector_merges_total 12",
		"parmonc_collector_saves_total 1",
		"parmonc_collector_registered_workers_total 3",
		`parmonc_collector_save_seconds_bucket{le="+Inf"} 1`,
		"parmonc_collector_save_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
