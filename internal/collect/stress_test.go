package collect

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Concurrency stress test for the sharded collector: many goroutines
// hammer PushSeq / Touch / PruneStale / Save / Progress concurrently
// for a fixed op budget, and the final counters and report bytes must
// match a single-threaded replay of the same per-worker op logs. Run
// with -race; the replay assertion is what turns "didn't crash" into
// "merged exactly once, in a deterministic reduction order".

const (
	stressWorkers      = 64
	stressOpsPerWorker = 150
)

type stressOp struct {
	seq       uint64 // sequence number carried by the push
	snap      stat.Snapshot
	duplicate bool // re-push of the previous sequence number (dedup fodder)
	touch     bool // heartbeat instead of a push
}

// stressLog generates worker w's deterministic op log: sequenced pushes
// with occasional duplicate deliveries and interleaved heartbeats.
func stressLog(w int) []stressOp {
	r := rand.New(rand.NewSource(9000 + int64(w)))
	ops := make([]stressOp, 0, stressOpsPerWorker)
	seq := uint64(0)
	row := make([]float64, 4*3)
	for len(ops) < stressOpsPerWorker {
		switch {
		case r.Intn(10) == 0:
			ops = append(ops, stressOp{touch: true})
		case seq > 0 && r.Intn(5) == 0:
			// Redeliver the latest push (same seq, same payload): the
			// transport's retry-after-lost-reply case.
			ops = append(ops, stressOp{seq: seq, snap: lastPushSnap(ops), duplicate: true})
		default:
			seq++
			a := stat.New(4, 3)
			for k := 0; k <= r.Intn(3); k++ {
				for i := range row {
					row[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(5)-2))
				}
				if err := a.AddTimed(row, time.Duration(r.Intn(100))*time.Microsecond); err != nil {
					panic(err)
				}
			}
			ops = append(ops, stressOp{seq: seq, snap: a.Snapshot()})
		}
	}
	return ops
}

// lastPushSnap returns the snapshot of the most recent push op.
func lastPushSnap(ops []stressOp) stat.Snapshot {
	for i := len(ops) - 1; i >= 0; i-- {
		if !ops[i].touch {
			return ops[i].snap
		}
	}
	panic("no prior push")
}

func stressMeta() store.RunMeta {
	return store.RunMeta{
		SeqNum: 1, Nrow: 4, Ncol: 3, Workers: stressWorkers,
		Params: rng.DefaultParams(), Gamma: stat.DefaultConfidenceCoefficient,
		StartedAt: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
	}
}

// applyLog replays worker w's op log against eng, in order.
func applyLog(t *testing.T, eng *Collector, w int, ops []stressOp) {
	t.Helper()
	for _, op := range ops {
		if op.touch {
			if err := eng.Touch(w, 0); err != nil {
				t.Errorf("worker %d: touch: %v", w, err)
				return
			}
			continue
		}
		if err := eng.PushSeq(w, op.seq, op.snap); err != nil {
			t.Errorf("worker %d: push seq %d: %v", w, op.seq, err)
			return
		}
	}
}

// reportBits flattens a report into comparable bit patterns.
func reportBits(rep stat.Report) []uint64 {
	out := make([]uint64, 0, 4*len(rep.Mean)+8)
	out = append(out, uint64(rep.N), uint64(rep.Nrow), uint64(rep.Ncol),
		math.Float64bits(rep.MaxAbsErr), math.Float64bits(rep.MaxRelErr),
		math.Float64bits(rep.MaxVar), uint64(rep.MeanSimTime), math.Float64bits(rep.Gamma))
	for _, m := range [][]float64{rep.Mean, rep.Var, rep.AbsErr, rep.RelErr} {
		for _, v := range m {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

func TestStressConcurrentPushersMatchSequentialReplay(t *testing.T) {
	logs := make([][]stressOp, stressWorkers)
	for w := range logs {
		logs[w] = stressLog(w)
	}

	// Concurrent run: one goroutine per worker plus chaos goroutines
	// calling every read/save entry point for the duration.
	eng, err := New(nil, stressMeta(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < stressWorkers; w++ {
		eng.Register(w)
	}
	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			applyLog(t, eng, w, logs[w])
		}(w)
	}
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		chaosWG.Add(1)
		go func(i int) {
			defer chaosWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i {
				case 0:
					if err := eng.Save(); err != nil {
						t.Errorf("save: %v", err)
						return
					}
				case 1:
					_ = eng.Progress()
					_ = eng.N()
				case 2:
					// A generous timeout: liveness churn without prunes,
					// so the replay below sees the same active set.
					if n := eng.PruneStale(time.Hour); n != 0 {
						t.Errorf("pruned %d workers mid-stress", n)
						return
					}
					_ = eng.Overdue(time.Hour)
				case 3:
					_ = eng.Report()
					_ = eng.Metrics()
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	gotRep := eng.Report()
	gotM := eng.Metrics()

	// Single-threaded replay of the identical op logs, worker-major.
	ref, err := New(nil, stressMeta(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < stressWorkers; w++ {
		ref.Register(w)
	}
	for w := 0; w < stressWorkers; w++ {
		applyLog(t, ref, w, logs[w])
	}
	if t.Failed() {
		t.FailNow()
	}
	wantRep := ref.Report()
	wantM := ref.Metrics()

	if eng.N() != ref.N() {
		t.Errorf("N = %d, replay %d", eng.N(), ref.N())
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"pushes", gotM.Pushes, wantM.Pushes},
		{"merges", gotM.Merges, wantM.Merges},
		{"redeliveries", gotM.Redeliveries, wantM.Redeliveries},
		{"rejected", gotM.RejectedSnapshots, wantM.RejectedSnapshots},
		{"invalid", gotM.PushesInvalid, wantM.PushesInvalid},
		{"stale_epoch", gotM.StaleEpochPushes, wantM.StaleEpochPushes},
		{"registered", gotM.RegisteredWorkers, wantM.RegisteredWorkers},
		{"pruned", gotM.PrunedWorkers, wantM.PrunedWorkers},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, replay %d", c.name, c.got, c.want)
		}
	}

	gotBits, wantBits := reportBits(gotRep), reportBits(wantRep)
	for i := range gotBits {
		if gotBits[i] != wantBits[i] {
			t.Fatalf("report bits differ at word %d: %#x vs %#x\nconcurrent: N=%d mean[0]=%v\nreplay:     N=%d mean[0]=%v",
				i, gotBits[i], wantBits[i], gotRep.N, gotRep.Mean[0], wantRep.N, wantRep.Mean[0])
		}
	}
}

// TestStressStableMoments runs the same schedule through the
// Welford/Chan collector: the stable fold is deterministic in the same
// way, so concurrent and replayed reports must agree bit for bit.
func TestStressStableMoments(t *testing.T) {
	logs := make([][]stressOp, 8)
	for w := range logs {
		logs[w] = stressLog(w)
	}
	run := func(concurrent bool) stat.Report {
		eng, err := New(nil, stressMeta(), Config{StableMoments: true})
		if err != nil {
			t.Fatal(err)
		}
		for w := range logs {
			eng.Register(w)
		}
		if concurrent {
			var wg sync.WaitGroup
			for w := range logs {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					applyLog(t, eng, w, logs[w])
				}(w)
			}
			wg.Wait()
		} else {
			for w := range logs {
				applyLog(t, eng, w, logs[w])
			}
		}
		return eng.Report()
	}
	want := run(false)
	for trial := 0; trial < 3; trial++ {
		got := run(true)
		gotBits, wantBits := reportBits(got), reportBits(want)
		for i := range gotBits {
			if gotBits[i] != wantBits[i] {
				t.Fatalf("trial %d: stable report bits differ at word %d", trial, i)
			}
		}
	}
}

// TestStressSaveUnderFire: periodic saves racing a push storm on a real
// store never tear — the saved checkpoint is always some consistent
// fold, and the final checkpoint matches the final report exactly.
func TestStressSaveUnderFire(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(st, stressMeta(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	logs := make([][]stressOp, workers)
	for w := range logs {
		logs[w] = stressLog(w)
		eng.Register(w)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			applyLog(t, eng, w, logs[w])
		}(w)
	}
	stop := make(chan struct{})
	var saver sync.WaitGroup
	saver.Add(1)
	go func() {
		defer saver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := eng.Save(); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	saver.Wait()
	if t.Failed() {
		t.FailNow()
	}
	rep, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := st.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != rep.N {
		t.Fatalf("checkpoint N = %d, report N = %d", snap.N, rep.N)
	}
	total := stat.New(4, 3)
	if err := total.Merge(snap); err != nil {
		t.Fatal(err)
	}
	gotBits, wantBits := reportBits(total.Report(rep.Gamma)), reportBits(rep)
	for i := range gotBits {
		if gotBits[i] != wantBits[i] {
			t.Fatalf("checkpoint-derived report differs from Finalize at word %d", i)
		}
	}
}
