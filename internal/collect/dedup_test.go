package collect_test

import (
	"strings"
	"testing"

	"parmonc/internal/collect"
)

// TestPushSeqExactlyOnceMerge pins the idempotency contract backing the
// cluster transport's at-least-once delivery: a redelivered sequence
// number is acknowledged (nil error — the transport must stop
// retrying) but merged only once, and the redelivery is metered.
func TestPushSeqExactlyOnceMerge(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)

	snap := snapOf(t, 1, 2, []float64{1, 2})
	if err := c.PushSeq(1, 1, snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // the same delivery, retried
		if err := c.PushSeq(1, 1, snap); err != nil {
			t.Fatalf("redelivery %d: %v (duplicates must ack, not error)", i, err)
		}
	}
	if got := c.N(); got != 1 {
		t.Fatalf("N = %d after redeliveries, want 1", got)
	}
	m := c.Metrics()
	if m.Merges != 1 || m.Redeliveries != 3 || m.Pushes != 4 {
		t.Fatalf("merges/redeliveries/pushes = %d/%d/%d, want 1/3/4",
			m.Merges, m.Redeliveries, m.Pushes)
	}
	if got := c.LastSeq(1); got != 1 {
		t.Fatalf("LastSeq = %d, want 1", got)
	}

	// A stale sequence number (lower than the high-water mark) is also
	// a duplicate, even if never literally seen: monotonicity is the
	// contract.
	if err := c.PushSeq(1, 2, snapOf(t, 1, 2, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := c.PushSeq(1, 1, snap); err != nil {
		t.Fatal(err)
	}
	if got := c.N(); got != 2 {
		t.Fatalf("N = %d, want 2 (stale seq must not merge)", got)
	}
}

// TestPushSeqZeroIsUnsequenced: seq 0 is the legacy in-process path and
// always merges — no dedup, no high-water-mark movement.
func TestPushSeqZeroIsUnsequenced(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	snap := snapOf(t, 1, 2, []float64{1, 2})
	for i := 0; i < 3; i++ {
		if err := c.Push(1, snap); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.N(); got != 3 {
		t.Fatalf("N = %d, want 3 (unsequenced pushes always merge)", got)
	}
	if got := c.LastSeq(1); got != 0 {
		t.Fatalf("LastSeq = %d, want 0", got)
	}
	if m := c.Metrics(); m.Redeliveries != 0 {
		t.Fatalf("redeliveries = %d, want 0", m.Redeliveries)
	}
}

// TestPushSeqIsPerWorker: sequence spaces are independent per worker —
// worker 2's seq 1 is not a duplicate of worker 1's.
func TestPushSeqIsPerWorker(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	c.Register(2)
	if err := c.PushSeq(1, 1, snapOf(t, 1, 2, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := c.PushSeq(2, 1, snapOf(t, 1, 2, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if got := c.N(); got != 2 {
		t.Fatalf("N = %d, want 2", got)
	}
	if c.LastSeq(1) != 1 || c.LastSeq(2) != 1 {
		t.Fatalf("LastSeq = %d/%d, want 1/1", c.LastSeq(1), c.LastSeq(2))
	}
}

// TestDeregisterResetsSeq: the processor index of a departed worker can
// be reused by a fresh session whose sequence numbers restart at 1.
func TestDeregisterResetsSeq(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	if err := c.PushSeq(1, 5, snapOf(t, 1, 2, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(1); err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	if err := c.PushSeq(1, 1, snapOf(t, 1, 2, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if got := c.N(); got != 2 {
		t.Fatalf("N = %d, want 2 (fresh session's seq 1 must merge)", got)
	}
}

// TestDuplicateEventAndMetricsRow: redeliveries surface through both
// the event hook and the metrics text dump.
func TestDuplicateEventAndMetricsRow(t *testing.T) {
	var kinds []collect.EventKind
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		Hook: func(e collect.Event) { kinds = append(kinds, e.Kind) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	snap := snapOf(t, 1, 2, []float64{1, 2})
	c.PushSeq(1, 1, snap)
	c.PushSeq(1, 1, snap)
	var dup bool
	for _, k := range kinds {
		if k == collect.EventDuplicate {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("no EventDuplicate among %v", kinds)
	}
	if got := collect.EventDuplicate.String(); got != "duplicate" {
		t.Fatalf("EventDuplicate.String() = %q", got)
	}

	c.NoteTransport(7, 3)
	var sb strings.Builder
	if _, err := c.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"redeliveries", "worker_retries", "worker_reconnects"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, sb.String())
		}
	}
	m := c.Metrics()
	if m.WorkerRetries != 7 || m.WorkerReconnects != 3 {
		t.Fatalf("transport counters = %d/%d, want 7/3", m.WorkerRetries, m.WorkerReconnects)
	}
}
