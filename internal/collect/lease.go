package collect

import "fmt"

// Lease is a contiguous window of realization substreams granted to one
// worker: realizations [Start, Start+Count) of processor subsequence
// Proc of the run's experiment subsequence. Because the leap-frog
// hierarchy makes every realization's RNG stream addressable by
// coordinate alone, a lease fully determines the random numbers its
// realizations consume — whichever worker executes it, whenever. That
// is what lets a coordinator revoke a dead worker's lease and reissue
// the uncomputed remainder elsewhere with a bit-identical final report.
//
// ID identifies the grant, not the window: a reissued remainder covers
// part of the same window under a fresh ID, so stale pushes against the
// revoked grant are rejectable while the remainder is recomputed.
type Lease struct {
	ID    uint64 // grant identity, unique per collector run; 0 = unassigned
	Proc  uint64 // processor subsequence the window lives on
	Start uint64 // first realization index of the window
	Count int64  // number of realizations in the window
}

func (l Lease) String() string {
	return fmt.Sprintf("lease %d: proc %d realizations [%d,%d)", l.ID, l.Proc, l.Start, uint64(int64(l.Start)+l.Count))
}

// Remainder returns the uncomputed tail of the lease after done
// realizations have been acked and merged. The remainder carries no ID;
// the lease manager stamps one when it reissues the window.
func (l Lease) Remainder(done int64) Lease {
	if done < 0 {
		done = 0
	}
	if done > l.Count {
		done = l.Count
	}
	return Lease{Proc: l.Proc, Start: l.Start + uint64(done), Count: l.Count - done}
}

// PartitionLeases splits a bounded run of maxSamples realizations into
// leases of at most leaseSize realizations each, one processor
// subsequence per lease (lease i lives on processor i+1 — processor
// indices are 1-based so an unset coordinate is never a valid one).
// The partition is a pure function of (maxSamples, leaseSize): every
// transport that uses the same inputs enumerates the same substreams,
// which is the ground truth the cross-transport conformance and chaos
// bit-identity tests compare against.
func PartitionLeases(maxSamples, leaseSize int64) []Lease {
	if maxSamples <= 0 || leaseSize <= 0 {
		return nil
	}
	n := (maxSamples + leaseSize - 1) / leaseSize
	leases := make([]Lease, 0, n)
	var proc uint64 = 1
	for rem := maxSamples; rem > 0; proc++ {
		count := leaseSize
		if rem < count {
			count = rem
		}
		leases = append(leases, Lease{Proc: proc, Start: 0, Count: count})
		rem -= count
	}
	return leases
}
