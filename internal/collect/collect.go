// Package collect is the transport-agnostic collector engine — the
// paper's 0-th processor, factored out of the transports that feed it.
//
// The PARMONC design has exactly one statistical authority: workers
// push subtotal sample moments, the collector merges them by formula
// (5), periodically averages and saves results to files, and detects
// when the target sample volume is reached (Sec. 2.2, 3.2). Before this
// package existed that lifecycle was implemented twice — once in the
// in-process driver and once in the RPC coordinator — which is exactly
// the kind of duplicated parallel path where silent statistical drift
// hides (Lubachevsky, "Why The Results of Parallel and Serial Monte
// Carlo Simulations May Differ").
//
// Collector owns the full lifecycle:
//
//   - resume / base-checkpoint establishment (the paper's res = 1),
//   - snapshot validation at the merge boundary (every transport),
//   - per-worker registration, liveness and pruning,
//   - raw-sum (Accumulator) or Welford/Chan (StableAccumulator)
//     accumulation behind the shared stat.Moments contract,
//   - per-worker cumulative snapshots for post-mortem averaging,
//   - periodic averaging + atomic save, target detection, progress
//     callbacks,
//   - built-in Metrics (atomic counters + optional event hook).
//
// Transports stay thin: the goroutine driver (internal/core), the
// net/rpc coordinator (internal/cluster) and the discrete-event cluster
// simulator (internal/clustersim) all reduce to Register / Push /
// Finalize calls against one Collector. Collector is safe for
// concurrent use by multiple transport goroutines.
package collect

import (
	"fmt"
	"os"
	"sync"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Progress is the point-in-time view of the running statistics handed
// to Config.OnSave after every save — the paper's "control the absolute
// and relative stochastic errors during the simulation".
type Progress struct {
	N         int64         `json:"n"`               // total sample volume so far (incl. resumed)
	MaxAbsErr float64       `json:"max_abs_err"`     // ε_max over the matrix
	MaxRelErr float64       `json:"max_rel_err_pct"` // ρ_max over the matrix, percent
	MaxVar    float64       `json:"max_var"`         // σ̄²_max
	Elapsed   time.Duration `json:"elapsed_ns"`      // time since the collector was created
}

// Config tunes a Collector beyond what the run metadata carries.
type Config struct {
	// Resume merges the previous simulation's checkpoint found in the
	// store (the paper's res = 1). The previous run must have identical
	// matrix dimensions and a different experiments subsequence number.
	// Requires a non-nil store.
	Resume bool

	// AverPeriod is the paper's peraver: pushes arriving at least this
	// long after the previous save trigger averaging + save. Zero or
	// negative disables periodic saves; Save and Finalize still work.
	AverPeriod time.Duration

	// SaveWorkerSnapshots writes each worker's cumulative moments on
	// every push, enabling post-mortem averaging with manaver.
	SaveWorkerSnapshots bool

	// StableMoments accumulates with the numerically stable
	// Welford/Chan algorithm instead of raw sums; see
	// stat.StableAccumulator.
	StableMoments bool

	// OnSave, if non-nil, is invoked after every save with a snapshot
	// of the running statistics. It runs with the collector lock held:
	// it must not block for long and must not call back into the
	// Collector.
	OnSave func(Progress)

	// Hook, if non-nil, receives one Event per collector occurrence
	// (push, reject, merge, save, prune) in addition to the atomic
	// counters. Same locking caveats as OnSave.
	Hook Hook

	// Registry, if non-nil, is the obs registry the collector's
	// counters and save-latency histogram are registered in — this is
	// how a coordinator's /metrics endpoint sees the engine. Nil means
	// a private registry (metrics still work via Collector.Metrics,
	// they are just not exported anywhere).
	Registry *obs.Registry

	// Now supplies the clock; nil means time.Now. The cluster
	// simulator injects simulated time here.
	Now func() time.Time
}

// Collector is the engine. Create with New; all methods are safe for
// concurrent use.
type Collector struct {
	dir  *store.Dir // nil: in-memory engine, nothing persisted
	meta store.RunMeta
	cfg  Config
	now  func() time.Time

	mu         sync.Mutex
	total      stat.Moments
	baseN      int64
	perWorker  map[int]*stat.Accumulator // nil unless SaveWorkerSnapshots
	active     map[int]bool
	lastSeen   map[int]time.Time
	lastSeq    map[int]uint64 // highest applied push sequence per worker
	registered int            // workers ever registered (stamped into saved metadata)
	lastSave   time.Time
	start      time.Time
	saveErr    error // first save failure, sticky

	metrics *Metrics
}

// New creates a collector for the run described by meta, persisting
// into dir. A nil dir yields a purely in-memory engine (used by the
// cluster simulator and benchmarks): resume is unavailable and saves
// only update statistics and metrics.
//
// With a store, New establishes the base moments — the previous run's
// checkpoint when cfg.Resume is set, empty otherwise (removing stale
// checkpoint and worker-snapshot files) — then writes the run-base
// checkpoint and appends to the experiment log, exactly as both
// transports did before.
func New(dir *store.Dir, meta store.RunMeta, cfg Config) (*Collector, error) {
	if meta.Nrow <= 0 || meta.Ncol <= 0 {
		return nil, fmt.Errorf("collect: invalid realization dimensions %d×%d", meta.Nrow, meta.Ncol)
	}
	if meta.Gamma <= 0 {
		return nil, fmt.Errorf("collect: confidence coefficient %g must be positive", meta.Gamma)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Collector{
		dir:      dir,
		meta:     meta,
		cfg:      cfg,
		now:      now,
		active:   map[int]bool{},
		lastSeen: map[int]time.Time{},
		lastSeq:  map[int]uint64{},
		metrics:  newMetrics(reg),
	}
	c.start = now()
	c.lastSave = c.start
	if cfg.SaveWorkerSnapshots {
		c.perWorker = map[int]*stat.Accumulator{}
	}

	base := stat.New(meta.Nrow, meta.Ncol)
	if cfg.Resume {
		if dir == nil {
			return nil, fmt.Errorf("collect: resume requires a store")
		}
		snap, prevMeta, err := dir.LoadCheckpoint()
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("collect: resume requested but no previous simulation found in %s", dir.Root())
			}
			return nil, fmt.Errorf("collect: resume: %w", err)
		}
		if prevMeta.Nrow != meta.Nrow || prevMeta.Ncol != meta.Ncol {
			return nil, fmt.Errorf("collect: previous simulation is %d×%d, this run is %d×%d",
				prevMeta.Nrow, prevMeta.Ncol, meta.Nrow, meta.Ncol)
		}
		if prevMeta.SeqNum == meta.SeqNum {
			return nil, fmt.Errorf("collect: resume must use a different experiments subsequence number than the previous run (both are %d); base random numbers would repeat", meta.SeqNum)
		}
		if err := base.Merge(snap); err != nil {
			return nil, err
		}
	} else if dir != nil {
		if err := dir.RemoveCheckpoint(); err != nil {
			return nil, err
		}
		if err := dir.RemoveWorkerSnapshots(); err != nil {
			return nil, err
		}
	}
	c.baseN = base.N()
	c.metrics.resumedSamples.Set(float64(c.baseN))

	if cfg.StableMoments {
		sc := stat.NewStable(meta.Nrow, meta.Ncol)
		if err := sc.Merge(base.Snapshot()); err != nil {
			return nil, err
		}
		c.total = sc
	} else {
		c.total = base
	}

	if dir != nil {
		if err := dir.SaveBaseCheckpoint(base.Snapshot(), meta); err != nil {
			return nil, err
		}
		if err := dir.AppendExperiment(meta, cfg.Resume); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Register adds worker w to the active set. Registering an already
// active worker only refreshes its liveness timestamp.
func (c *Collector) Register(w int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		c.active[w] = true
		c.registered++
		c.metrics.registered.Add(1)
	}
	c.lastSeen[w] = c.now()
}

// Deregister removes worker w from the active set (the worker detached
// voluntarily). It errors for a worker that is not active.
func (c *Collector) Deregister(w int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	delete(c.active, w)
	delete(c.lastSeen, w)
	delete(c.lastSeq, w)
	return nil
}

// LastSeq returns the highest push sequence number applied for worker
// w (0 if the worker has only sent unsequenced pushes, or none).
func (c *Collector) LastSeq(w int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq[w]
}

// NoteTransport folds transport-level resilience counters reported by a
// detaching worker (RPC retries and reconnects it performed) into the
// collector metrics, so a job's full delivery story — including what
// happened on the worker side of the wire — is visible in one place.
func (c *Collector) NoteTransport(retries, reconnects int64) {
	if retries > 0 {
		c.metrics.workerRetries.Add(retries)
	}
	if reconnects > 0 {
		c.metrics.workerReconnects.Add(reconnects)
	}
}

// IsActive reports whether worker w is currently registered.
func (c *Collector) IsActive(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active[w]
}

// Active returns the number of currently registered workers.
func (c *Collector) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// PruneStale drops workers not heard from for longer than timeout and
// returns how many were dropped. A pruned worker's already-merged
// subtotals remain valid (they came from its own disjoint substream);
// only unsent work is lost — the same failure semantics as an MPI rank
// dying in the original library.
func (c *Collector) PruneStale(timeout time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	pruned := 0
	for w, seen := range c.lastSeen {
		if c.active[w] && now.Sub(seen) > timeout {
			delete(c.active, w)
			delete(c.lastSeen, w)
			delete(c.lastSeq, w)
			pruned++
			c.metrics.pruned.Add(1)
			c.event(Event{Kind: EventPrune, Worker: w})
		}
	}
	return pruned
}

// Push merges one subtotal snapshot from worker w — formula (5). The
// snapshot is validated first, for every transport: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals. Push also handles per-worker snapshot persistence and
// periodic averaging + save; a save failure is returned (and remembered
// for Finalize).
func (c *Collector) Push(w int, snap stat.Snapshot) error {
	return c.PushSeq(w, 0, snap)
}

// PushSeq is Push carrying a per-worker delivery sequence number, the
// idempotency key of an at-least-once transport. Sequence numbers start
// at 1 and increase monotonically per worker; a snapshot whose sequence
// number has already been applied is acknowledged without merging
// (counted as a redelivery), so a transport may retry a push whose
// reply was lost without double-counting moments — at-least-once
// delivery, exactly-once merge. Seq 0 means "unsequenced": always
// merged (the in-process transport needs no idempotency).
func (c *Collector) PushSeq(w int, seq uint64, snap stat.Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.pushes.Add(1)
	c.event(Event{Kind: EventPush, Worker: w, Samples: snap.N})
	if !c.active[w] {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return fmt.Errorf("collect: push from unknown worker %d", w)
	}
	c.lastSeen[w] = c.now()
	if seq != 0 && seq <= c.lastSeq[w] {
		c.metrics.redelivered.Add(1)
		c.event(Event{Kind: EventDuplicate, Worker: w, Samples: snap.N})
		return nil
	}
	if err := c.validateSnap(snap); err != nil {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return fmt.Errorf("collect: rejecting snapshot from worker %d: %w", w, err)
	}
	if err := c.total.Merge(snap); err != nil {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return err
	}
	c.metrics.merges.Add(1)
	c.event(Event{Kind: EventMerge, Worker: w, Samples: snap.N})
	if seq != 0 {
		c.lastSeq[w] = seq
	}

	if c.perWorker != nil {
		acc, ok := c.perWorker[w]
		if !ok {
			acc = stat.New(c.meta.Nrow, c.meta.Ncol)
			c.perWorker[w] = acc
		}
		if err := acc.Merge(snap); err != nil {
			return err
		}
		if c.dir != nil {
			if err := c.dir.SaveWorkerSnapshot(w, acc.Snapshot(), c.stampedMetaLocked()); err != nil {
				return err
			}
		}
		c.metrics.workerSnapshots.Add(1)
	}

	if c.cfg.AverPeriod > 0 && c.now().Sub(c.lastSave) >= c.cfg.AverPeriod {
		return c.saveLocked()
	}
	return nil
}

// validateSnap rejects snapshots that are internally inconsistent or
// have the wrong dimensions for this run.
func (c *Collector) validateSnap(snap stat.Snapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if snap.Nrow != c.meta.Nrow || snap.Ncol != c.meta.Ncol {
		return fmt.Errorf("stat: snapshot is %d×%d, run is %d×%d", snap.Nrow, snap.Ncol, c.meta.Nrow, c.meta.Ncol)
	}
	return nil
}

// stampedMetaLocked returns the run metadata with the worker count
// updated to what the collector has actually seen (the RPC transport
// hands out indices dynamically, so the configured count can be stale).
func (c *Collector) stampedMetaLocked() store.RunMeta {
	meta := c.meta
	if c.registered > meta.Workers {
		meta.Workers = c.registered
	}
	return meta
}

// Save forces an averaging + save cycle regardless of AverPeriod.
func (c *Collector) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Collector) saveLocked() error {
	t0 := c.now()
	var err error
	if c.dir != nil {
		rep := c.total.Report(c.meta.Gamma)
		meta := c.stampedMetaLocked()
		if e := c.dir.SaveResults(rep, meta); e != nil {
			err = e
		}
		if e := c.dir.SaveCheckpoint(c.total.Snapshot(), meta); e != nil && err == nil {
			err = e
		}
	}
	c.lastSave = c.now()
	elapsed := c.lastSave.Sub(t0)
	if err != nil {
		if c.saveErr == nil {
			c.saveErr = err
		}
		return err
	}
	c.metrics.saves.Add(1)
	c.metrics.saveNanos.Add(int64(elapsed))
	c.metrics.saveSeconds.Observe(elapsed.Seconds())
	c.event(Event{Kind: EventSave, Samples: c.total.N(), Elapsed: elapsed})
	if c.cfg.OnSave != nil {
		c.cfg.OnSave(c.progressLocked())
	}
	return nil
}

func (c *Collector) progressLocked() Progress {
	rep := c.total.Report(c.meta.Gamma)
	return Progress{
		N:         rep.N,
		MaxAbsErr: rep.MaxAbsErr,
		MaxRelErr: rep.MaxRelErr,
		MaxVar:    rep.MaxVar,
		Elapsed:   c.now().Sub(c.start),
	}
}

// Finalize performs the final averaging + save and returns the merged
// report. If any save — this one or an earlier periodic one — failed,
// Finalize returns that first error instead.
func (c *Collector) Finalize() (stat.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.saveLocked() // error is sticky in saveErr
	if c.saveErr != nil {
		return stat.Report{}, c.saveErr
	}
	return c.total.Report(c.meta.Gamma), nil
}

// Report computes the current derived statistics without saving.
func (c *Collector) Report() stat.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total.Report(c.meta.Gamma)
}

// Progress returns the current progress snapshot without saving.
func (c *Collector) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked()
}

// N returns the current total sample volume, including any resumed
// base.
func (c *Collector) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total.N()
}

// BaseN returns the sample volume the run started from (zero for a
// fresh run, the previous run's volume after a resume).
func (c *Collector) BaseN() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.baseN
}

// TargetReached reports whether the run's new-sample target (meta
// MaxSV) has been met. A non-positive target never completes — the
// paper's "endless simulation" mode.
func (c *Collector) TargetReached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta.MaxSV > 0 && c.total.N()-c.baseN >= c.meta.MaxSV
}

// Metrics returns a consistent snapshot of the collector's counters.
func (c *Collector) Metrics() MetricsSnapshot {
	return c.metrics.snapshot()
}

// event delivers e to the configured hook, if any. Called with c.mu
// held.
func (c *Collector) event(e Event) {
	if c.cfg.Hook != nil {
		c.cfg.Hook(e)
	}
}
