// Package collect is the transport-agnostic collector engine — the
// paper's 0-th processor, factored out of the transports that feed it.
//
// The PARMONC design has exactly one statistical authority: workers
// push subtotal sample moments, the collector merges them by formula
// (5), periodically averages and saves results to files, and detects
// when the target sample volume is reached (Sec. 2.2, 3.2). Before this
// package existed that lifecycle was implemented twice — once in the
// in-process driver and once in the RPC coordinator — which is exactly
// the kind of duplicated parallel path where silent statistical drift
// hides (Lubachevsky, "Why The Results of Parallel and Serial Monte
// Carlo Simulations May Differ").
//
// Collector owns the full lifecycle:
//
//   - resume / base-checkpoint establishment (the paper's res = 1),
//   - snapshot validation at the merge boundary (every transport),
//   - per-worker registration, liveness and pruning,
//   - raw-sum (Accumulator) or Welford/Chan (StableAccumulator)
//     accumulation behind the shared stat.Moments contract,
//   - per-worker cumulative snapshots for post-mortem averaging,
//   - periodic averaging + atomic save, target detection, progress
//     callbacks,
//   - built-in Metrics (atomic counters + optional event hook).
//
// # Concurrency
//
// The collector is sharded by worker: each worker index owns a shard
// holding its staging accumulator, liveness timestamp, sequence
// high-water mark, registration epoch and lease ledger, all guarded by
// a per-shard mutex. A push therefore only contends with other traffic
// from the same worker — the paper's Fig. 2 scalability claim requires
// the 0-th processor to stay off the workers' critical path, and a
// single global lock put it squarely on it. The global report is not
// maintained incrementally: whenever one is needed (save, finalize,
// status) the shards are folded into a fresh total in ascending
// worker-index order, base moments first — a fixed reduction tree (see
// internal/stat/shard.go), so the result is a deterministic function of
// what each worker pushed and reports stay reproducible no matter how
// pushes interleaved in real time. Saves serialize on their own lock
// and fold a copy-on-save total, so a slow fsync never stalls pushes.
//
// Transports stay thin: the goroutine driver (internal/core), the
// net/rpc coordinator (internal/cluster) and the discrete-event cluster
// simulator (internal/clustersim) all reduce to Register / Push /
// Finalize calls against one Collector. Collector is safe for
// concurrent use by multiple transport goroutines.
package collect

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// ErrFenced marks a push or heartbeat from a stale registration epoch
// or a revoked lease. A fenced sender is a zombie: the coordinator has
// already declared it dead and may have reissued its work, so its
// subtotals must not merge. Transports should acknowledge a fenced
// push (so the zombie stops retrying) and tell the worker to
// re-register into a fresh epoch. Test with errors.Is.
var ErrFenced = errors.New("collect: fenced (stale epoch or revoked lease)")

// Progress is the point-in-time view of the running statistics handed
// to Config.OnSave after every save — the paper's "control the absolute
// and relative stochastic errors during the simulation".
type Progress struct {
	N         int64         `json:"n"`               // total sample volume so far (incl. resumed)
	MaxAbsErr float64       `json:"max_abs_err"`     // ε_max over the matrix
	MaxRelErr float64       `json:"max_rel_err_pct"` // ρ_max over the matrix, percent
	MaxVar    float64       `json:"max_var"`         // σ̄²_max
	Elapsed   time.Duration `json:"elapsed_ns"`      // time since the collector was created
}

// Config tunes a Collector beyond what the run metadata carries.
type Config struct {
	// Resume merges the previous simulation's checkpoint found in the
	// store (the paper's res = 1). The previous run must have identical
	// matrix dimensions and a different experiments subsequence number.
	// Requires a non-nil store.
	Resume bool

	// Restore, if non-nil, rebuilds this collector from a recovery
	// image of the *same* run (same experiments subsequence) captured
	// by ExportRecovery — shards, dedup cursors and lease ledgers, not
	// just the folded total — so a restarted coordinator reproduces the
	// exact reduction tree and its reports stay bit-identical to an
	// uninterrupted run. Restored shards start inactive and their
	// incomplete leases revoked: pre-crash grants must fence, and the
	// caller reissues the uncomputed remainders. Mutually exclusive
	// with Resume, StableMoments and SaveWorkerSnapshots.
	Restore *store.RecoveryState

	// PersistRecovery writes the recovery image (store.RecoveryFile)
	// after every successful save cycle, enabling Restore on the next
	// incarnation. Requires a store.
	PersistRecovery bool

	// AverPeriod is the paper's peraver: pushes arriving at least this
	// long after the previous save trigger averaging + save. Zero or
	// negative disables periodic saves; Save and Finalize still work.
	AverPeriod time.Duration

	// SaveWorkerSnapshots writes each worker's cumulative moments on
	// every push, enabling post-mortem averaging with manaver.
	SaveWorkerSnapshots bool

	// StableMoments accumulates with the numerically stable
	// Welford/Chan algorithm instead of raw sums; see
	// stat.StableAccumulator.
	StableMoments bool

	// OnSave, if non-nil, is invoked after every save with a snapshot
	// of the running statistics. It runs with the collector's save lock
	// held (pushes keep flowing, further saves wait): it must not block
	// for long and must not call back into the Collector.
	OnSave func(Progress)

	// Stop, if non-nil, is the run's statistical completion rule (see
	// StopRule): it is evaluated with the freshly folded progress after
	// every averaging + save cycle, and on demand via EvalStop. The
	// first true latches; transports poll StopSatisfied alongside
	// TargetReached to decide when to wind the run down.
	Stop StopRule

	// Hook, if non-nil, receives one Event per collector occurrence
	// (push, reject, merge, save, prune) in addition to the atomic
	// counters. Events from one worker's pushes arrive in order, but
	// hooks fire concurrently across workers (under the originating
	// worker's shard lock), so a Hook must be safe for concurrent use,
	// keep it fast, and must not call back into the Collector.
	Hook Hook

	// Registry, if non-nil, is the obs registry the collector's
	// counters and save-latency histogram are registered in — this is
	// how a coordinator's /metrics endpoint sees the engine. Nil means
	// a private registry (metrics still work via Collector.Metrics,
	// they are just not exported anywhere).
	Registry *obs.Registry

	// Now supplies the clock; nil means time.Now. The cluster
	// simulator injects simulated time here.
	Now func() time.Time

	// Mono supplies the monotonic clock used for worker liveness
	// (PruneStale, Overdue). Nil derives it from Now when Now is set
	// (the simulator's virtual time is already jump-free), and
	// otherwise from time.Since on a monotonic base — so a wall-clock
	// step (NTP, VM migration) can never mass-prune healthy workers.
	Mono func() time.Duration
}

// Collector is the engine. Create with New; all methods are safe for
// concurrent use.
type Collector struct {
	dir  *store.Dir // nil: in-memory engine, nothing persisted
	meta store.RunMeta
	cfg  Config
	now  func() time.Time
	mono func() time.Duration

	// mu guards the shards and leaseIdx maps themselves; the state
	// inside a shard is guarded by that shard's own mutex. Lock order
	// where both are needed: mu before shard.mu.
	mu       sync.RWMutex
	shards   map[int]*shard
	leaseIdx map[uint64]int // lease ID → holder's worker index; grows for the collector's lifetime

	baseSnap stat.Snapshot // the run's base moments (resume or empty); immutable after New
	baseN    int64
	start    time.Time

	samples     atomic.Int64 // new samples merged this run (excludes the resumed base)
	activeCount atomic.Int64 // currently registered workers
	registered  atomic.Int64 // workers ever registered (stamped into saved metadata)

	// saveMu serializes averaging + save cycles (and the sticky first
	// save error) without blocking pushes: a save folds the shards into
	// a copy and does its I/O holding only saveMu. lastSave is the
	// UnixNano of the last save attempt, read by the push hot path to
	// decide whether a periodic save is due.
	saveMu   sync.Mutex
	saveErr  error // first save failure, sticky
	lastSave atomic.Int64
	saveDur  atomic.Int64 // wall time of the most recent save cycle, ns

	stopHit atomic.Bool // latched verdict of Config.Stop

	metrics *Metrics
}

// shard is one worker's slice of the collector: everything a push from
// that worker touches, guarded by one mutex so pushes from different
// workers never contend. The staging accumulator is cumulative for the
// collector's lifetime — a pruned worker's already-merged subtotals
// stay in the totals (they came from its own disjoint substream), so a
// shard is deactivated on prune/deregister, never discarded.
type shard struct {
	mu       sync.Mutex
	worker   int
	active   bool
	lastSeen time.Duration           // monotonic liveness offset (Collector.mono reading)
	lastSeq  uint64                  // highest applied push sequence for the current epoch
	epoch    uint64                  // current registration epoch (0: unfenced)
	raw      *stat.Accumulator       // staging moments (raw-sum mode)
	stable   *stat.StableAccumulator // staging moments (StableMoments mode)
	wacc     *stat.Accumulator       // cumulative per-worker snapshot (SaveWorkerSnapshots)
	leases   map[uint64]*leaseState  // leases granted to this worker, by ID
}

// leaseState is the collector-side ledger entry for one granted lease:
// under which epoch it was granted and how far the merged, acked prefix
// extends. done only ever grows, and only via pushes that passed the
// epoch fences — so Remainder(done) is exactly the work a reissue must
// cover. The holder is implicit: lease state lives in the holder's
// shard, and the global leaseIdx maps lease IDs to holders.
type leaseState struct {
	lease     Lease
	epoch     uint64
	done      int64
	revoked   bool
	completed bool
}

// New creates a collector for the run described by meta, persisting
// into dir. A nil dir yields a purely in-memory engine (used by the
// cluster simulator and benchmarks): resume is unavailable and saves
// only update statistics and metrics.
//
// With a store, New establishes the base moments — the previous run's
// checkpoint when cfg.Resume is set, empty otherwise (removing stale
// checkpoint and worker-snapshot files) — then writes the run-base
// checkpoint and appends to the experiment log, exactly as both
// transports did before.
func New(dir *store.Dir, meta store.RunMeta, cfg Config) (*Collector, error) {
	if meta.Nrow <= 0 || meta.Ncol <= 0 {
		return nil, fmt.Errorf("collect: invalid realization dimensions %d×%d", meta.Nrow, meta.Ncol)
	}
	if meta.Gamma <= 0 {
		return nil, fmt.Errorf("collect: confidence coefficient %g must be positive", meta.Gamma)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Collector{
		dir:      dir,
		meta:     meta,
		cfg:      cfg,
		now:      now,
		shards:   map[int]*shard{},
		leaseIdx: map[uint64]int{},
		metrics:  newMetrics(reg),
	}
	c.start = now()
	c.lastSave.Store(c.start.UnixNano())
	switch {
	case cfg.Mono != nil:
		c.mono = cfg.Mono
	case cfg.Now != nil:
		base := cfg.Now()
		c.mono = func() time.Duration { return cfg.Now().Sub(base) }
	default:
		base := time.Now()
		c.mono = func() time.Duration { return time.Since(base) }
	}

	if cfg.Restore != nil {
		switch {
		case cfg.Resume:
			return nil, fmt.Errorf("collect: Restore and Resume are mutually exclusive")
		case cfg.StableMoments:
			return nil, fmt.Errorf("collect: Restore requires raw moments (StableMoments unsupported)")
		case cfg.SaveWorkerSnapshots:
			return nil, fmt.Errorf("collect: Restore does not carry per-worker snapshot accumulators (SaveWorkerSnapshots unsupported)")
		}
	}
	if cfg.PersistRecovery && dir == nil {
		return nil, fmt.Errorf("collect: PersistRecovery requires a store")
	}

	base := stat.New(meta.Nrow, meta.Ncol)
	if cfg.Restore != nil {
		// The base moments come from the image: the interrupted run may
		// itself have started from a resume base, and the restored fold
		// must start from the same bits.
		if err := base.Merge(cfg.Restore.Base); err != nil {
			return nil, fmt.Errorf("collect: recovery base: %w", err)
		}
	} else if cfg.Resume {
		if dir == nil {
			return nil, fmt.Errorf("collect: resume requires a store")
		}
		snap, prevMeta, err := dir.LoadCheckpoint()
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("collect: resume requested but no previous simulation found in %s", dir.Root())
			}
			return nil, fmt.Errorf("collect: resume: %w", err)
		}
		if prevMeta.Nrow != meta.Nrow || prevMeta.Ncol != meta.Ncol {
			return nil, fmt.Errorf("collect: previous simulation is %d×%d, this run is %d×%d",
				prevMeta.Nrow, prevMeta.Ncol, meta.Nrow, meta.Ncol)
		}
		if prevMeta.SeqNum == meta.SeqNum {
			return nil, fmt.Errorf("collect: resume must use a different experiments subsequence number than the previous run (both are %d); base random numbers would repeat", meta.SeqNum)
		}
		if err := base.Merge(snap); err != nil {
			return nil, err
		}
	} else if dir != nil {
		if err := dir.RemoveCheckpoint(); err != nil {
			return nil, err
		}
		if err := dir.RemoveWorkerSnapshots(); err != nil {
			return nil, err
		}
	}
	c.baseSnap = base.Snapshot()
	c.baseN = base.N()
	c.metrics.resumedSamples.Set(float64(c.baseN))

	if cfg.Restore != nil {
		if err := c.restoreFrom(cfg.Restore); err != nil {
			return nil, err
		}
	}

	if dir != nil {
		if err := dir.SaveBaseCheckpoint(c.baseSnap, meta); err != nil {
			return nil, err
		}
		if err := dir.AppendExperiment(meta, cfg.Resume || cfg.Restore != nil); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// shardFor returns worker w's shard, or nil if w was never registered.
func (c *Collector) shardFor(w int) *shard {
	c.mu.RLock()
	sh := c.shards[w]
	c.mu.RUnlock()
	return sh
}

// shardOrCreate returns worker w's shard, creating it on first
// registration.
func (c *Collector) shardOrCreate(w int) *shard {
	if sh := c.shardFor(w); sh != nil {
		return sh
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shards[w]; sh != nil {
		return sh
	}
	sh := &shard{worker: w, leases: map[uint64]*leaseState{}}
	if c.cfg.StableMoments {
		sh.stable = stat.NewStable(c.meta.Nrow, c.meta.Ncol)
	} else {
		sh.raw = stat.New(c.meta.Nrow, c.meta.Ncol)
	}
	if c.cfg.SaveWorkerSnapshots {
		sh.wacc = stat.New(c.meta.Nrow, c.meta.Ncol)
	}
	c.shards[w] = sh
	return sh
}

// shardList snapshots the shard set in ascending worker order — the
// deterministic iteration order for folds, pruning and liveness scans.
func (c *Collector) shardList() []*shard {
	c.mu.RLock()
	out := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		out = append(out, sh)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].worker < out[j].worker })
	return out
}

// Register adds worker w to the active set. Registering an already
// active worker only refreshes its liveness timestamp. Workers
// registered this way are unfenced (epoch 0): epoch checks do not apply
// to them. Transports that prune and re-admit workers should use
// RegisterEpoch instead.
func (c *Collector) Register(w int) {
	sh := c.shardOrCreate(w)
	sh.mu.Lock()
	c.registerShard(sh)
	sh.mu.Unlock()
}

// registerShard activates sh (idempotently) and refreshes its liveness.
// Called with sh.mu held.
func (c *Collector) registerShard(sh *shard) {
	if !sh.active {
		sh.active = true
		c.activeCount.Add(1)
		c.registered.Add(1)
		c.metrics.registered.Add(1)
	}
	sh.lastSeen = c.mono()
}

// RegisterEpoch admits worker w under registration epoch epoch (epochs
// start at 1 and bump each time a pruned index is re-admitted). Moving
// to a new epoch resets the worker's push-sequence space — the fresh
// session restarts its sequence numbers at 1 — while the epoch fence
// keeps the old session's stale retries out; that closes the dedup hole
// a bare sequence reset would open.
func (c *Collector) RegisterEpoch(w int, epoch uint64) {
	sh := c.shardOrCreate(w)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.registerShard(sh)
	if sh.epoch != epoch {
		sh.epoch = epoch
		sh.lastSeq = 0
	}
}

// Epoch returns worker w's current registration epoch (0 if unfenced).
func (c *Collector) Epoch(w int) uint64 {
	sh := c.shardFor(w)
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.epoch
}

// Deregister removes worker w from the active set (the worker detached
// voluntarily). It errors for a worker that is not active.
func (c *Collector) Deregister(w int) error {
	sh := c.shardFor(w)
	if sh == nil {
		return fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.active {
		return fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	sh.active = false
	sh.lastSeq = 0
	c.activeCount.Add(-1)
	return nil
}

// LastSeq returns the highest push sequence number applied for worker
// w (0 if the worker has only sent unsequenced pushes, or none).
func (c *Collector) LastSeq(w int) uint64 {
	sh := c.shardFor(w)
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lastSeq
}

// NoteTransport folds transport-level resilience counters reported by a
// detaching worker (RPC retries and reconnects it performed) into the
// collector metrics, so a job's full delivery story — including what
// happened on the worker side of the wire — is visible in one place.
func (c *Collector) NoteTransport(retries, reconnects int64) {
	if retries > 0 {
		c.metrics.workerRetries.Add(retries)
	}
	if reconnects > 0 {
		c.metrics.workerReconnects.Add(reconnects)
	}
}

// IsActive reports whether worker w is currently registered.
func (c *Collector) IsActive(w int) bool {
	sh := c.shardFor(w)
	if sh == nil {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.active
}

// Active returns the number of currently registered workers.
func (c *Collector) Active() int {
	return int(c.activeCount.Load())
}

// PruneStale drops workers not heard from for longer than timeout and
// returns how many were dropped. Liveness ages are measured on the
// monotonic clock (Config.Mono), so a wall-clock step cannot make a
// healthy worker look stale. A pruned worker's already-merged subtotals
// remain valid (they came from its own disjoint substream); leases it
// held are revoked but their remainders are dropped — transports that
// reissue lost work use RevokeWorker instead.
func (c *Collector) PruneStale(timeout time.Duration) int {
	age := c.mono()
	pruned := 0
	for _, sh := range c.shardList() {
		sh.mu.Lock()
		if sh.active && age-sh.lastSeen > timeout {
			c.pruneShard(sh)
			pruned++
		}
		sh.mu.Unlock()
	}
	return pruned
}

// pruneShard deactivates sh, revokes its leases, and emits the prune
// event. The shard's epoch survives so a comeback can be detected (and
// fenced) by RegisterEpoch with a bumped epoch. Called with sh.mu held.
func (c *Collector) pruneShard(sh *shard) {
	sh.active = false
	sh.lastSeq = 0
	c.activeCount.Add(-1)
	for _, ls := range sh.leases {
		if !ls.completed {
			ls.revoked = true
		}
	}
	c.metrics.pruned.Add(1)
	c.event(Event{Kind: EventPrune, Worker: sh.worker})
}

// Overdue returns the active workers whose last sign of life (register,
// push, or Touch) is older than age, measured on the monotonic clock.
func (c *Collector) Overdue(age time.Duration) []int {
	now := c.mono()
	var out []int
	for _, sh := range c.shardList() {
		sh.mu.Lock()
		if sh.active && now-sh.lastSeen > age {
			out = append(out, sh.worker)
		}
		sh.mu.Unlock()
	}
	return out
}

// Touch records a heartbeat from worker w under epoch: proof of life
// with no statistical payload. A heartbeat from an inactive worker or a
// stale epoch is fenced (counted, ErrFenced) — the zombie must
// re-register before it is trusted again.
func (c *Collector) Touch(w int, epoch uint64) error {
	sh := c.shardFor(w)
	if sh != nil {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.active && (epoch == 0 || epoch == sh.epoch) {
			sh.lastSeen = c.mono()
			return nil
		}
	}
	c.metrics.staleEpoch.Add(1)
	c.event(Event{Kind: EventStale, Worker: w})
	return fmt.Errorf("collect: heartbeat from worker %d epoch %d: %w", w, epoch, ErrFenced)
}

// GrantLease records that worker w (under its current epoch) holds l.
// The lease ID must be unique for the collector's lifetime; the grant
// is fenced to the worker's epoch at grant time.
func (c *Collector) GrantLease(w int, l Lease) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[w]
	if sh == nil {
		return fmt.Errorf("collect: lease grant to unknown worker %d", w)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.active {
		return fmt.Errorf("collect: lease grant to unknown worker %d", w)
	}
	if l.ID == 0 {
		return fmt.Errorf("collect: lease grant without an ID")
	}
	if _, dup := c.leaseIdx[l.ID]; dup {
		return fmt.Errorf("collect: duplicate lease ID %d", l.ID)
	}
	if l.Count <= 0 {
		return fmt.Errorf("collect: lease %d has no realizations", l.ID)
	}
	sh.leases[l.ID] = &leaseState{lease: l, epoch: sh.epoch}
	c.leaseIdx[l.ID] = w
	return nil
}

// RevokeWorker forcibly removes worker w — the supervision verdict for
// a worker that blew its heartbeat miss budget — and returns the
// uncomputed remainders of the leases it held, ready to be reissued
// under fresh IDs. Already-completed leases contribute nothing; the
// merged prefix of an incomplete lease is excluded (it is already in
// the totals and must not be recomputed).
func (c *Collector) RevokeWorker(w int) []Lease {
	sh := c.shardFor(w)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.active {
		return nil
	}
	rem := remainders(sh)
	c.pruneShard(sh)
	return rem
}

// ReclaimLeases revokes worker w's outstanding incomplete leases
// without deregistering it, and returns their uncomputed remainders.
// It makes lease grants idempotent at the transport layer: a worker
// asking for work holds no lease it knows about, so any lease the
// ledger still shows it holding is a grant whose reply was lost in
// flight — requeue its remainder and the worker gets the same window
// back under a fresh ID instead of leaking the original grant forever.
func (c *Collector) ReclaimLeases(w int) []Lease {
	sh := c.shardFor(w)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.active {
		return nil
	}
	rem := remainders(sh)
	for _, ls := range sh.leases {
		if !ls.completed {
			ls.revoked = true
		}
	}
	return rem
}

// ReleaseWorker is the voluntary-detach counterpart of RevokeWorker: the
// worker said goodbye cleanly (its final subtotals are flushed), so it
// is deregistered without counting as pruned, and the remainders of any
// leases it abandoned mid-window are returned for reissue.
func (c *Collector) ReleaseWorker(w int) ([]Lease, error) {
	sh := c.shardFor(w)
	if sh == nil {
		return nil, fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.active {
		return nil, fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	rem := remainders(sh)
	sh.active = false
	sh.lastSeq = 0
	c.activeCount.Add(-1)
	for _, ls := range sh.leases {
		if !ls.completed {
			ls.revoked = true
		}
	}
	return rem, nil
}

// remainders collects the uncomputed tails of sh's live leases in
// deterministic (Proc, Start) order. Called with sh.mu held.
func remainders(sh *shard) []Lease {
	var rem []Lease
	for _, ls := range sh.leases {
		if !ls.completed && !ls.revoked {
			if r := ls.lease.Remainder(ls.done); r.Count > 0 {
				rem = append(rem, r)
			}
		}
	}
	sort.Slice(rem, func(i, j int) bool {
		if rem[i].Proc != rem[j].Proc {
			return rem[i].Proc < rem[j].Proc
		}
		return rem[i].Start < rem[j].Start
	})
	return rem
}

// LeaseProgress reports how many realizations of lease id have been
// merged, out of how many granted.
func (c *Collector) LeaseProgress(id uint64) (done, count int64, ok bool) {
	c.mu.RLock()
	w, known := c.leaseIdx[id]
	var sh *shard
	if known {
		sh = c.shards[w]
	}
	c.mu.RUnlock()
	if sh == nil {
		return 0, 0, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.leases[id]
	if ls == nil {
		return 0, 0, false
	}
	return ls.done, ls.lease.Count, true
}

// Push merges one subtotal snapshot from worker w — formula (5). The
// snapshot is validated first, for every transport: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals. Push also handles per-worker snapshot persistence and
// periodic averaging + save; a save failure is returned (and remembered
// for Finalize).
func (c *Collector) Push(w int, snap stat.Snapshot) error {
	return c.PushFrom(PushOrigin{Worker: w}, snap)
}

// PushSeq is Push carrying a per-worker delivery sequence number, the
// idempotency key of an at-least-once transport. Sequence numbers start
// at 1 and increase monotonically per worker; a snapshot whose sequence
// number has already been applied is acknowledged without merging
// (counted as a redelivery), so a transport may retry a push whose
// reply was lost without double-counting moments — at-least-once
// delivery, exactly-once merge. Seq 0 means "unsequenced": always
// merged (the in-process transport needs no idempotency).
func (c *Collector) PushSeq(w int, seq uint64, snap stat.Snapshot) error {
	return c.PushFrom(PushOrigin{Worker: w, Seq: seq}, snap)
}

// PushOrigin identifies where a push came from and what it claims to
// advance: the worker index, its registration epoch (0: unfenced), its
// delivery sequence number (0: unsequenced), and — when the push
// belongs to a lease — the lease ID plus the cumulative count of that
// lease's realizations completed once this snapshot merges.
type PushOrigin struct {
	Worker int
	Epoch  uint64
	Seq    uint64
	Lease  uint64
	Done   int64
}

// PushFrom is the full merge entry point. Fencing happens before any
// state changes: a push from a pruned worker or a stale epoch, or
// against a revoked or foreign lease, returns ErrFenced (wrapped) and
// is counted as stale — it must be acknowledged but never merged, which
// is what closes the zombie-after-sequence-reset dedup hole. Lease
// pushes additionally keep the per-lease done ledger: Done must advance
// by exactly the snapshot's sample volume, so the ledger always equals
// the merged prefix of the window.
//
// The push only takes the sender's shard lock, so pushes from different
// workers run concurrently; the snapshot merges into the worker's
// staging accumulator and reaches the global report at the next fold.
func (c *Collector) PushFrom(o PushOrigin, snap stat.Snapshot) error {
	w := o.Worker
	c.metrics.pushes.Add(1)
	c.mu.RLock()
	sh := c.shards[w]
	var leaseHolder int
	leaseKnown := false
	if o.Lease != 0 {
		leaseHolder, leaseKnown = c.leaseIdx[o.Lease]
	}
	c.mu.RUnlock()
	if sh == nil {
		c.event(Event{Kind: EventPush, Worker: w, Samples: snap.N})
		if o.Epoch != 0 {
			return c.fenced(o, snap, "push from pruned worker")
		}
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return fmt.Errorf("collect: push from unknown worker %d", w)
	}
	sh.mu.Lock()
	saveDue, err := c.pushShard(sh, o, snap, leaseHolder, leaseKnown)
	sh.mu.Unlock()
	if saveDue {
		return c.maybeSave()
	}
	return err
}

// pushShard is the per-worker body of PushFrom. Called with sh.mu held;
// it never takes c.mu or saveMu (the lease holder was resolved under
// c.mu before the shard lock, and a due periodic save is signalled to
// the caller to run after the shard unlocks).
func (c *Collector) pushShard(sh *shard, o PushOrigin, snap stat.Snapshot, leaseHolder int, leaseKnown bool) (saveDue bool, err error) {
	w := o.Worker
	c.event(Event{Kind: EventPush, Worker: w, Samples: snap.N})
	if !sh.active {
		if o.Epoch != 0 {
			return false, c.fenced(o, snap, "push from pruned worker")
		}
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return false, fmt.Errorf("collect: push from unknown worker %d", w)
	}
	if o.Epoch != 0 && o.Epoch != sh.epoch {
		return false, c.fenced(o, snap, "stale epoch")
	}
	sh.lastSeen = c.mono()
	if o.Seq != 0 && o.Seq <= sh.lastSeq {
		c.metrics.redelivered.Add(1)
		c.event(Event{Kind: EventDuplicate, Worker: w, Samples: snap.N})
		return false, nil
	}
	var ls *leaseState
	if o.Lease != 0 {
		ls = sh.leases[o.Lease]
		switch {
		case ls == nil && leaseKnown && leaseHolder != w:
			return false, c.fenced(o, snap, "lease held by another worker session")
		case ls == nil:
			return false, c.fenced(o, snap, "unknown lease")
		case ls.revoked:
			return false, c.fenced(o, snap, "revoked lease")
		case o.Epoch != 0 && ls.epoch != o.Epoch:
			return false, c.fenced(o, snap, "lease held by another worker session")
		}
		if o.Done <= ls.done || o.Done > ls.lease.Count || o.Done-ls.done != snap.N {
			c.metrics.rejected.Add(1)
			c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
			return false, fmt.Errorf("collect: worker %d lease %d: done %d (have %d, snapshot volume %d) is out of range",
				w, o.Lease, o.Done, ls.done, snap.N)
		}
	}
	if verr := c.validateSnap(snap); verr != nil {
		c.metrics.rejected.Add(1)
		c.metrics.pushesInvalid.Add(1)
		c.event(Event{Kind: EventInvalid, Worker: w, Samples: snap.N})
		return false, fmt.Errorf("collect: rejecting snapshot from worker %d: %w", w, verr)
	}
	// The snapshot is validated exactly once, above; the staging merge
	// only re-checks dimensions.
	if sh.raw != nil {
		err = sh.raw.MergeTrusted(snap)
	} else {
		err = sh.stable.MergeTrusted(snap)
	}
	if err != nil {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return false, err
	}
	c.samples.Add(snap.N)
	c.metrics.merges.Add(1)
	c.event(Event{Kind: EventMerge, Worker: w, Samples: snap.N})
	if o.Seq != 0 {
		sh.lastSeq = o.Seq
	}
	if ls != nil {
		ls.done = o.Done
		if ls.done == ls.lease.Count {
			ls.completed = true
			c.metrics.leasesCompleted.Add(1)
			c.event(Event{Kind: EventLeaseComplete, Worker: w, Samples: ls.lease.Count, Seq: o.Lease})
		}
	}

	if sh.wacc != nil {
		if err := sh.wacc.MergeTrusted(snap); err != nil {
			return false, err
		}
		if c.dir != nil {
			if err := c.dir.SaveWorkerSnapshot(w, sh.wacc.Snapshot(), c.stampedMeta()); err != nil {
				return false, err
			}
		}
		c.metrics.workerSnapshots.Add(1)
	}

	saveDue = c.cfg.AverPeriod > 0 &&
		c.now().Sub(time.Unix(0, c.lastSave.Load())) >= c.cfg.AverPeriod
	return saveDue, nil
}

// fenced counts and reports a fenced push.
func (c *Collector) fenced(o PushOrigin, snap stat.Snapshot, why string) error {
	c.metrics.staleEpoch.Add(1)
	c.event(Event{Kind: EventStale, Worker: o.Worker, Samples: snap.N, Seq: o.Lease})
	return fmt.Errorf("collect: worker %d epoch %d lease %d: %s: %w", o.Worker, o.Epoch, o.Lease, why, ErrFenced)
}

// validateSnap rejects snapshots that are internally inconsistent
// (NaN/Inf or negative moment sums, mismatched slice lengths, negative
// volume) or have the wrong dimensions for this run.
func (c *Collector) validateSnap(snap stat.Snapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if snap.Nrow != c.meta.Nrow || snap.Ncol != c.meta.Ncol {
		return fmt.Errorf("stat: snapshot is %d×%d, run is %d×%d", snap.Nrow, snap.Ncol, c.meta.Nrow, c.meta.Ncol)
	}
	return nil
}

// stampedMeta returns the run metadata with the worker count updated to
// what the collector has actually seen (the RPC transport hands out
// indices dynamically, so the configured count can be stale).
func (c *Collector) stampedMeta() store.RunMeta {
	meta := c.meta
	if r := int(c.registered.Load()); r > meta.Workers {
		meta.Workers = r
	}
	return meta
}

// fold reduces the base moments and every shard's staging accumulator
// into a fresh total, in the fixed order that makes reports
// deterministic: base first, then shards in ascending worker-index
// order (see internal/stat/shard.go). Inactive shards are included — a
// pruned worker's merged subtotals stay valid. Each shard is locked
// only while its own moments fold in, so pushes to other shards keep
// flowing.
func (c *Collector) fold() stat.Moments {
	shards := c.shardList()
	if c.cfg.StableMoments {
		total := stat.NewStable(c.meta.Nrow, c.meta.Ncol)
		if err := total.MergeTrusted(c.baseSnap); err != nil {
			panic(fmt.Sprintf("collect: base moments fold: %v", err))
		}
		for _, sh := range shards {
			sh.mu.Lock()
			err := total.MergeStable(sh.stable)
			sh.mu.Unlock()
			if err != nil {
				panic(fmt.Sprintf("collect: shard %d fold: %v", sh.worker, err))
			}
		}
		return total
	}
	total := stat.New(c.meta.Nrow, c.meta.Ncol)
	if err := total.MergeTrusted(c.baseSnap); err != nil {
		panic(fmt.Sprintf("collect: base moments fold: %v", err))
	}
	for _, sh := range shards {
		sh.mu.Lock()
		err := total.MergeFrom(sh.raw)
		sh.mu.Unlock()
		if err != nil {
			panic(fmt.Sprintf("collect: shard %d fold: %v", sh.worker, err))
		}
	}
	return total
}

// SaveLag reports how long the most recent averaging + save cycle
// took (zero before the first one). A collector whose saves take
// longer than its AverPeriod can never catch up on its own; callers
// use this signal to apply backpressure upstream — the run manager
// turns it into a soft RetryAfter on batched pushes so fleet workers
// stretch their push cadence instead of piling more work on.
func (c *Collector) SaveLag() time.Duration {
	return time.Duration(c.saveDur.Load())
}

// Save forces an averaging + save cycle regardless of AverPeriod.
func (c *Collector) Save() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	_, err := c.saveHolding()
	return err
}

// maybeSave runs a periodic save if one is still due — the push that
// noticed the elapsed AverPeriod calls this after releasing its shard
// lock, and the double check under saveMu collapses the herd of pushes
// that noticed simultaneously into one save.
func (c *Collector) maybeSave() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if c.now().Sub(time.Unix(0, c.lastSave.Load())) < c.cfg.AverPeriod {
		return nil
	}
	_, err := c.saveHolding()
	return err
}

// saveHolding performs one averaging + save cycle. Called with saveMu
// held; pushes are not blocked (the fold takes each shard lock only
// briefly, and the file I/O runs on the folded copy).
func (c *Collector) saveHolding() (stat.Report, error) {
	total := c.fold()
	t0 := c.now()
	rep := total.Report(c.meta.Gamma)
	if c.cfg.Stop != nil && !c.stopHit.Load() && c.cfg.Stop(Progress{
		N:         rep.N,
		MaxAbsErr: rep.MaxAbsErr,
		MaxRelErr: rep.MaxRelErr,
		MaxVar:    rep.MaxVar,
		Elapsed:   t0.Sub(c.start),
	}) {
		c.stopHit.Store(true)
	}
	var err error
	if c.dir != nil {
		meta := c.stampedMeta()
		if e := c.dir.SaveResults(rep, meta); e != nil {
			err = e
		}
		if e := c.dir.SaveCheckpoint(total.Snapshot(), meta); e != nil && err == nil {
			err = e
		}
		if c.cfg.PersistRecovery {
			if e := c.SaveRecovery(); e != nil && err == nil {
				err = e
			}
		}
	}
	now := c.now()
	c.lastSave.Store(now.UnixNano())
	elapsed := now.Sub(t0)
	c.saveDur.Store(int64(elapsed)) // slow failing saves count too
	if err != nil {
		if c.saveErr == nil {
			c.saveErr = err
		}
		return rep, err
	}
	c.metrics.saves.Add(1)
	c.metrics.saveNanos.Add(int64(elapsed))
	c.metrics.saveSeconds.Observe(elapsed.Seconds())
	c.event(Event{Kind: EventSave, Samples: rep.N, Elapsed: elapsed})
	if c.cfg.OnSave != nil {
		c.cfg.OnSave(Progress{
			N:         rep.N,
			MaxAbsErr: rep.MaxAbsErr,
			MaxRelErr: rep.MaxRelErr,
			MaxVar:    rep.MaxVar,
			Elapsed:   now.Sub(c.start),
		})
	}
	return rep, nil
}

// Finalize performs the final averaging + save and returns the merged
// report. If any save — this one or an earlier periodic one — failed,
// Finalize returns that first error instead.
func (c *Collector) Finalize() (stat.Report, error) {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	rep, _ := c.saveHolding() // error is sticky in saveErr
	if c.saveErr != nil {
		return stat.Report{}, c.saveErr
	}
	return rep, nil
}

// Report computes the current derived statistics without saving.
func (c *Collector) Report() stat.Report {
	return c.fold().Report(c.meta.Gamma)
}

// Progress returns the current progress snapshot without saving.
func (c *Collector) Progress() Progress {
	rep := c.fold().Report(c.meta.Gamma)
	return Progress{
		N:         rep.N,
		MaxAbsErr: rep.MaxAbsErr,
		MaxRelErr: rep.MaxRelErr,
		MaxVar:    rep.MaxVar,
		Elapsed:   c.now().Sub(c.start),
	}
}

// N returns the current total sample volume, including any resumed
// base.
func (c *Collector) N() int64 {
	return c.baseN + c.samples.Load()
}

// BaseN returns the sample volume the run started from (zero for a
// fresh run, the previous run's volume after a resume).
func (c *Collector) BaseN() int64 {
	return c.baseN
}

// TargetReached reports whether the run's new-sample target (meta
// MaxSV) has been met. A non-positive target never completes — the
// paper's "endless simulation" mode.
func (c *Collector) TargetReached() bool {
	return c.meta.MaxSV > 0 && c.samples.Load() >= c.meta.MaxSV
}

// Metrics returns a consistent snapshot of the collector's counters.
func (c *Collector) Metrics() MetricsSnapshot {
	return c.metrics.snapshot()
}

// event delivers e to the configured hook, if any. Usually called with
// the originating shard's lock held; hooks must be concurrency-safe
// (see Config.Hook).
func (c *Collector) event(e Event) {
	if c.cfg.Hook != nil {
		c.cfg.Hook(e)
	}
}
