// Package collect is the transport-agnostic collector engine — the
// paper's 0-th processor, factored out of the transports that feed it.
//
// The PARMONC design has exactly one statistical authority: workers
// push subtotal sample moments, the collector merges them by formula
// (5), periodically averages and saves results to files, and detects
// when the target sample volume is reached (Sec. 2.2, 3.2). Before this
// package existed that lifecycle was implemented twice — once in the
// in-process driver and once in the RPC coordinator — which is exactly
// the kind of duplicated parallel path where silent statistical drift
// hides (Lubachevsky, "Why The Results of Parallel and Serial Monte
// Carlo Simulations May Differ").
//
// Collector owns the full lifecycle:
//
//   - resume / base-checkpoint establishment (the paper's res = 1),
//   - snapshot validation at the merge boundary (every transport),
//   - per-worker registration, liveness and pruning,
//   - raw-sum (Accumulator) or Welford/Chan (StableAccumulator)
//     accumulation behind the shared stat.Moments contract,
//   - per-worker cumulative snapshots for post-mortem averaging,
//   - periodic averaging + atomic save, target detection, progress
//     callbacks,
//   - built-in Metrics (atomic counters + optional event hook).
//
// Transports stay thin: the goroutine driver (internal/core), the
// net/rpc coordinator (internal/cluster) and the discrete-event cluster
// simulator (internal/clustersim) all reduce to Register / Push /
// Finalize calls against one Collector. Collector is safe for
// concurrent use by multiple transport goroutines.
package collect

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// ErrFenced marks a push or heartbeat from a stale registration epoch
// or a revoked lease. A fenced sender is a zombie: the coordinator has
// already declared it dead and may have reissued its work, so its
// subtotals must not merge. Transports should acknowledge a fenced
// push (so the zombie stops retrying) and tell the worker to
// re-register into a fresh epoch. Test with errors.Is.
var ErrFenced = errors.New("collect: fenced (stale epoch or revoked lease)")

// Progress is the point-in-time view of the running statistics handed
// to Config.OnSave after every save — the paper's "control the absolute
// and relative stochastic errors during the simulation".
type Progress struct {
	N         int64         `json:"n"`               // total sample volume so far (incl. resumed)
	MaxAbsErr float64       `json:"max_abs_err"`     // ε_max over the matrix
	MaxRelErr float64       `json:"max_rel_err_pct"` // ρ_max over the matrix, percent
	MaxVar    float64       `json:"max_var"`         // σ̄²_max
	Elapsed   time.Duration `json:"elapsed_ns"`      // time since the collector was created
}

// Config tunes a Collector beyond what the run metadata carries.
type Config struct {
	// Resume merges the previous simulation's checkpoint found in the
	// store (the paper's res = 1). The previous run must have identical
	// matrix dimensions and a different experiments subsequence number.
	// Requires a non-nil store.
	Resume bool

	// AverPeriod is the paper's peraver: pushes arriving at least this
	// long after the previous save trigger averaging + save. Zero or
	// negative disables periodic saves; Save and Finalize still work.
	AverPeriod time.Duration

	// SaveWorkerSnapshots writes each worker's cumulative moments on
	// every push, enabling post-mortem averaging with manaver.
	SaveWorkerSnapshots bool

	// StableMoments accumulates with the numerically stable
	// Welford/Chan algorithm instead of raw sums; see
	// stat.StableAccumulator.
	StableMoments bool

	// OnSave, if non-nil, is invoked after every save with a snapshot
	// of the running statistics. It runs with the collector lock held:
	// it must not block for long and must not call back into the
	// Collector.
	OnSave func(Progress)

	// Hook, if non-nil, receives one Event per collector occurrence
	// (push, reject, merge, save, prune) in addition to the atomic
	// counters. Same locking caveats as OnSave.
	Hook Hook

	// Registry, if non-nil, is the obs registry the collector's
	// counters and save-latency histogram are registered in — this is
	// how a coordinator's /metrics endpoint sees the engine. Nil means
	// a private registry (metrics still work via Collector.Metrics,
	// they are just not exported anywhere).
	Registry *obs.Registry

	// Now supplies the clock; nil means time.Now. The cluster
	// simulator injects simulated time here.
	Now func() time.Time

	// Mono supplies the monotonic clock used for worker liveness
	// (PruneStale, Overdue). Nil derives it from Now when Now is set
	// (the simulator's virtual time is already jump-free), and
	// otherwise from time.Since on a monotonic base — so a wall-clock
	// step (NTP, VM migration) can never mass-prune healthy workers.
	Mono func() time.Duration
}

// Collector is the engine. Create with New; all methods are safe for
// concurrent use.
type Collector struct {
	dir  *store.Dir // nil: in-memory engine, nothing persisted
	meta store.RunMeta
	cfg  Config
	now  func() time.Time

	mu         sync.Mutex
	total      stat.Moments
	baseN      int64
	perWorker  map[int]*stat.Accumulator // nil unless SaveWorkerSnapshots
	active     map[int]bool
	lastSeen   map[int]time.Duration // monotonic liveness offsets (c.mono readings)
	lastSeq    map[int]uint64        // highest applied push sequence per worker+epoch
	epochs     map[int]uint64        // current registration epoch per worker (0: unfenced)
	leases     map[uint64]*leaseState
	registered int // workers ever registered (stamped into saved metadata)
	lastSave   time.Time
	start      time.Time
	mono       func() time.Duration
	saveErr    error // first save failure, sticky

	metrics *Metrics
}

// leaseState is the collector-side ledger entry for one granted lease:
// who holds it, under which epoch, and how far the merged, acked prefix
// extends. done only ever grows, and only via pushes that passed the
// epoch and holder fences — so Remainder(done) is exactly the work a
// reissue must cover.
type leaseState struct {
	lease     Lease
	holder    int
	epoch     uint64
	done      int64
	revoked   bool
	completed bool
}

// New creates a collector for the run described by meta, persisting
// into dir. A nil dir yields a purely in-memory engine (used by the
// cluster simulator and benchmarks): resume is unavailable and saves
// only update statistics and metrics.
//
// With a store, New establishes the base moments — the previous run's
// checkpoint when cfg.Resume is set, empty otherwise (removing stale
// checkpoint and worker-snapshot files) — then writes the run-base
// checkpoint and appends to the experiment log, exactly as both
// transports did before.
func New(dir *store.Dir, meta store.RunMeta, cfg Config) (*Collector, error) {
	if meta.Nrow <= 0 || meta.Ncol <= 0 {
		return nil, fmt.Errorf("collect: invalid realization dimensions %d×%d", meta.Nrow, meta.Ncol)
	}
	if meta.Gamma <= 0 {
		return nil, fmt.Errorf("collect: confidence coefficient %g must be positive", meta.Gamma)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Collector{
		dir:      dir,
		meta:     meta,
		cfg:      cfg,
		now:      now,
		active:   map[int]bool{},
		lastSeen: map[int]time.Duration{},
		lastSeq:  map[int]uint64{},
		epochs:   map[int]uint64{},
		leases:   map[uint64]*leaseState{},
		metrics:  newMetrics(reg),
	}
	c.start = now()
	c.lastSave = c.start
	switch {
	case cfg.Mono != nil:
		c.mono = cfg.Mono
	case cfg.Now != nil:
		base := cfg.Now()
		c.mono = func() time.Duration { return cfg.Now().Sub(base) }
	default:
		base := time.Now()
		c.mono = func() time.Duration { return time.Since(base) }
	}
	if cfg.SaveWorkerSnapshots {
		c.perWorker = map[int]*stat.Accumulator{}
	}

	base := stat.New(meta.Nrow, meta.Ncol)
	if cfg.Resume {
		if dir == nil {
			return nil, fmt.Errorf("collect: resume requires a store")
		}
		snap, prevMeta, err := dir.LoadCheckpoint()
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("collect: resume requested but no previous simulation found in %s", dir.Root())
			}
			return nil, fmt.Errorf("collect: resume: %w", err)
		}
		if prevMeta.Nrow != meta.Nrow || prevMeta.Ncol != meta.Ncol {
			return nil, fmt.Errorf("collect: previous simulation is %d×%d, this run is %d×%d",
				prevMeta.Nrow, prevMeta.Ncol, meta.Nrow, meta.Ncol)
		}
		if prevMeta.SeqNum == meta.SeqNum {
			return nil, fmt.Errorf("collect: resume must use a different experiments subsequence number than the previous run (both are %d); base random numbers would repeat", meta.SeqNum)
		}
		if err := base.Merge(snap); err != nil {
			return nil, err
		}
	} else if dir != nil {
		if err := dir.RemoveCheckpoint(); err != nil {
			return nil, err
		}
		if err := dir.RemoveWorkerSnapshots(); err != nil {
			return nil, err
		}
	}
	c.baseN = base.N()
	c.metrics.resumedSamples.Set(float64(c.baseN))

	if cfg.StableMoments {
		sc := stat.NewStable(meta.Nrow, meta.Ncol)
		if err := sc.Merge(base.Snapshot()); err != nil {
			return nil, err
		}
		c.total = sc
	} else {
		c.total = base
	}

	if dir != nil {
		if err := dir.SaveBaseCheckpoint(base.Snapshot(), meta); err != nil {
			return nil, err
		}
		if err := dir.AppendExperiment(meta, cfg.Resume); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Register adds worker w to the active set. Registering an already
// active worker only refreshes its liveness timestamp. Workers
// registered this way are unfenced (epoch 0): epoch checks do not apply
// to them. Transports that prune and re-admit workers should use
// RegisterEpoch instead.
func (c *Collector) Register(w int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(w)
}

func (c *Collector) registerLocked(w int) {
	if !c.active[w] {
		c.active[w] = true
		c.registered++
		c.metrics.registered.Add(1)
	}
	c.lastSeen[w] = c.mono()
}

// RegisterEpoch admits worker w under registration epoch epoch (epochs
// start at 1 and bump each time a pruned index is re-admitted). Moving
// to a new epoch resets the worker's push-sequence space — the fresh
// session restarts its sequence numbers at 1 — while the epoch fence
// keeps the old session's stale retries out; that closes the dedup hole
// a bare sequence reset would open.
func (c *Collector) RegisterEpoch(w int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(w)
	if c.epochs[w] != epoch {
		c.epochs[w] = epoch
		delete(c.lastSeq, w)
	}
}

// Epoch returns worker w's current registration epoch (0 if unfenced).
func (c *Collector) Epoch(w int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs[w]
}

// Deregister removes worker w from the active set (the worker detached
// voluntarily). It errors for a worker that is not active.
func (c *Collector) Deregister(w int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	delete(c.active, w)
	delete(c.lastSeen, w)
	delete(c.lastSeq, w)
	return nil
}

// LastSeq returns the highest push sequence number applied for worker
// w (0 if the worker has only sent unsequenced pushes, or none).
func (c *Collector) LastSeq(w int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq[w]
}

// NoteTransport folds transport-level resilience counters reported by a
// detaching worker (RPC retries and reconnects it performed) into the
// collector metrics, so a job's full delivery story — including what
// happened on the worker side of the wire — is visible in one place.
func (c *Collector) NoteTransport(retries, reconnects int64) {
	if retries > 0 {
		c.metrics.workerRetries.Add(retries)
	}
	if reconnects > 0 {
		c.metrics.workerReconnects.Add(reconnects)
	}
}

// IsActive reports whether worker w is currently registered.
func (c *Collector) IsActive(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active[w]
}

// Active returns the number of currently registered workers.
func (c *Collector) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// PruneStale drops workers not heard from for longer than timeout and
// returns how many were dropped. Liveness ages are measured on the
// monotonic clock (Config.Mono), so a wall-clock step cannot make a
// healthy worker look stale. A pruned worker's already-merged subtotals
// remain valid (they came from its own disjoint substream); leases it
// held are revoked but their remainders are dropped — transports that
// reissue lost work use RevokeWorker instead.
func (c *Collector) PruneStale(timeout time.Duration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	age := c.mono()
	pruned := 0
	for w, seen := range c.lastSeen {
		if c.active[w] && age-seen > timeout {
			c.pruneLocked(w)
			pruned++
		}
	}
	return pruned
}

// pruneLocked removes w from the active set, revokes its leases, and
// emits the prune event. The worker's epoch survives so a comeback can
// be detected (and fenced) by RegisterEpoch with a bumped epoch.
func (c *Collector) pruneLocked(w int) {
	delete(c.active, w)
	delete(c.lastSeen, w)
	delete(c.lastSeq, w)
	for _, ls := range c.leases {
		if ls.holder == w && !ls.completed {
			ls.revoked = true
		}
	}
	c.metrics.pruned.Add(1)
	c.event(Event{Kind: EventPrune, Worker: w})
}

// Overdue returns the active workers whose last sign of life (register,
// push, or Touch) is older than age, measured on the monotonic clock.
func (c *Collector) Overdue(age time.Duration) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.mono()
	var out []int
	for w, seen := range c.lastSeen {
		if c.active[w] && now-seen > age {
			out = append(out, w)
		}
	}
	return out
}

// Touch records a heartbeat from worker w under epoch: proof of life
// with no statistical payload. A heartbeat from an inactive worker or a
// stale epoch is fenced (counted, ErrFenced) — the zombie must
// re-register before it is trusted again.
func (c *Collector) Touch(w int, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] || (epoch != 0 && epoch != c.epochs[w]) {
		c.metrics.staleEpoch.Add(1)
		c.event(Event{Kind: EventStale, Worker: w})
		return fmt.Errorf("collect: heartbeat from worker %d epoch %d: %w", w, epoch, ErrFenced)
	}
	c.lastSeen[w] = c.mono()
	return nil
}

// GrantLease records that worker w (under its current epoch) holds l.
// The lease ID must be unique for the collector's lifetime; the grant
// is fenced to the worker's epoch at grant time.
func (c *Collector) GrantLease(w int, l Lease) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return fmt.Errorf("collect: lease grant to unknown worker %d", w)
	}
	if l.ID == 0 {
		return fmt.Errorf("collect: lease grant without an ID")
	}
	if _, dup := c.leases[l.ID]; dup {
		return fmt.Errorf("collect: duplicate lease ID %d", l.ID)
	}
	if l.Count <= 0 {
		return fmt.Errorf("collect: lease %d has no realizations", l.ID)
	}
	c.leases[l.ID] = &leaseState{lease: l, holder: w, epoch: c.epochs[w]}
	return nil
}

// RevokeWorker forcibly removes worker w — the supervision verdict for
// a worker that blew its heartbeat miss budget — and returns the
// uncomputed remainders of the leases it held, ready to be reissued
// under fresh IDs. Already-completed leases contribute nothing; the
// merged prefix of an incomplete lease is excluded (it is already in
// the totals and must not be recomputed).
func (c *Collector) RevokeWorker(w int) []Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return nil
	}
	rem := c.remaindersLocked(w)
	c.pruneLocked(w)
	return rem
}

// ReclaimLeases revokes worker w's outstanding incomplete leases
// without deregistering it, and returns their uncomputed remainders.
// It makes lease grants idempotent at the transport layer: a worker
// asking for work holds no lease it knows about, so any lease the
// ledger still shows it holding is a grant whose reply was lost in
// flight — requeue its remainder and the worker gets the same window
// back under a fresh ID instead of leaking the original grant forever.
func (c *Collector) ReclaimLeases(w int) []Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return nil
	}
	rem := c.remaindersLocked(w)
	for _, ls := range c.leases {
		if ls.holder == w && !ls.completed {
			ls.revoked = true
		}
	}
	return rem
}

// ReleaseWorker is the voluntary-detach counterpart of RevokeWorker: the
// worker said goodbye cleanly (its final subtotals are flushed), so it
// is deregistered without counting as pruned, and the remainders of any
// leases it abandoned mid-window are returned for reissue.
func (c *Collector) ReleaseWorker(w int) ([]Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active[w] {
		return nil, fmt.Errorf("collect: deregister of unknown worker %d", w)
	}
	rem := c.remaindersLocked(w)
	delete(c.active, w)
	delete(c.lastSeen, w)
	delete(c.lastSeq, w)
	for _, ls := range c.leases {
		if ls.holder == w && !ls.completed {
			ls.revoked = true
		}
	}
	return rem, nil
}

// remaindersLocked collects the uncomputed tails of w's live leases in
// deterministic (Proc, Start) order.
func (c *Collector) remaindersLocked(w int) []Lease {
	var rem []Lease
	for _, ls := range c.leases {
		if ls.holder == w && !ls.completed && !ls.revoked {
			if r := ls.lease.Remainder(ls.done); r.Count > 0 {
				rem = append(rem, r)
			}
		}
	}
	sort.Slice(rem, func(i, j int) bool {
		if rem[i].Proc != rem[j].Proc {
			return rem[i].Proc < rem[j].Proc
		}
		return rem[i].Start < rem[j].Start
	})
	return rem
}

// LeaseProgress reports how many realizations of lease id have been
// merged, out of how many granted.
func (c *Collector) LeaseProgress(id uint64) (done, count int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls := c.leases[id]
	if ls == nil {
		return 0, 0, false
	}
	return ls.done, ls.lease.Count, true
}

// Push merges one subtotal snapshot from worker w — formula (5). The
// snapshot is validated first, for every transport: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals. Push also handles per-worker snapshot persistence and
// periodic averaging + save; a save failure is returned (and remembered
// for Finalize).
func (c *Collector) Push(w int, snap stat.Snapshot) error {
	return c.PushFrom(PushOrigin{Worker: w}, snap)
}

// PushSeq is Push carrying a per-worker delivery sequence number, the
// idempotency key of an at-least-once transport. Sequence numbers start
// at 1 and increase monotonically per worker; a snapshot whose sequence
// number has already been applied is acknowledged without merging
// (counted as a redelivery), so a transport may retry a push whose
// reply was lost without double-counting moments — at-least-once
// delivery, exactly-once merge. Seq 0 means "unsequenced": always
// merged (the in-process transport needs no idempotency).
func (c *Collector) PushSeq(w int, seq uint64, snap stat.Snapshot) error {
	return c.PushFrom(PushOrigin{Worker: w, Seq: seq}, snap)
}

// PushOrigin identifies where a push came from and what it claims to
// advance: the worker index, its registration epoch (0: unfenced), its
// delivery sequence number (0: unsequenced), and — when the push
// belongs to a lease — the lease ID plus the cumulative count of that
// lease's realizations completed once this snapshot merges.
type PushOrigin struct {
	Worker int
	Epoch  uint64
	Seq    uint64
	Lease  uint64
	Done   int64
}

// PushFrom is the full merge entry point. Fencing happens before any
// state changes: a push from a pruned worker or a stale epoch, or
// against a revoked or foreign lease, returns ErrFenced (wrapped) and
// is counted as stale — it must be acknowledged but never merged, which
// is what closes the zombie-after-sequence-reset dedup hole. Lease
// pushes additionally keep the per-lease done ledger: Done must advance
// by exactly the snapshot's sample volume, so the ledger always equals
// the merged prefix of the window.
func (c *Collector) PushFrom(o PushOrigin, snap stat.Snapshot) error {
	w := o.Worker
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics.pushes.Add(1)
	c.event(Event{Kind: EventPush, Worker: w, Samples: snap.N})
	if !c.active[w] {
		if o.Epoch != 0 {
			return c.fencedLocked(o, snap, "push from pruned worker")
		}
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return fmt.Errorf("collect: push from unknown worker %d", w)
	}
	if o.Epoch != 0 && o.Epoch != c.epochs[w] {
		return c.fencedLocked(o, snap, "stale epoch")
	}
	c.lastSeen[w] = c.mono()
	if o.Seq != 0 && o.Seq <= c.lastSeq[w] {
		c.metrics.redelivered.Add(1)
		c.event(Event{Kind: EventDuplicate, Worker: w, Samples: snap.N})
		return nil
	}
	var ls *leaseState
	if o.Lease != 0 {
		ls = c.leases[o.Lease]
		switch {
		case ls == nil:
			return c.fencedLocked(o, snap, "unknown lease")
		case ls.revoked:
			return c.fencedLocked(o, snap, "revoked lease")
		case ls.holder != w || (o.Epoch != 0 && ls.epoch != o.Epoch):
			return c.fencedLocked(o, snap, "lease held by another worker session")
		}
		if o.Done <= ls.done || o.Done > ls.lease.Count || o.Done-ls.done != snap.N {
			c.metrics.rejected.Add(1)
			c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
			return fmt.Errorf("collect: worker %d lease %d: done %d (have %d, snapshot volume %d) is out of range",
				w, o.Lease, o.Done, ls.done, snap.N)
		}
	}
	if err := c.validateSnap(snap); err != nil {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return fmt.Errorf("collect: rejecting snapshot from worker %d: %w", w, err)
	}
	if err := c.total.Merge(snap); err != nil {
		c.metrics.rejected.Add(1)
		c.event(Event{Kind: EventReject, Worker: w, Samples: snap.N})
		return err
	}
	c.metrics.merges.Add(1)
	c.event(Event{Kind: EventMerge, Worker: w, Samples: snap.N})
	if o.Seq != 0 {
		c.lastSeq[w] = o.Seq
	}
	if ls != nil {
		ls.done = o.Done
		if ls.done == ls.lease.Count {
			ls.completed = true
			c.metrics.leasesCompleted.Add(1)
			c.event(Event{Kind: EventLeaseComplete, Worker: w, Samples: ls.lease.Count, Seq: o.Lease})
		}
	}

	if c.perWorker != nil {
		acc, ok := c.perWorker[w]
		if !ok {
			acc = stat.New(c.meta.Nrow, c.meta.Ncol)
			c.perWorker[w] = acc
		}
		if err := acc.Merge(snap); err != nil {
			return err
		}
		if c.dir != nil {
			if err := c.dir.SaveWorkerSnapshot(w, acc.Snapshot(), c.stampedMetaLocked()); err != nil {
				return err
			}
		}
		c.metrics.workerSnapshots.Add(1)
	}

	if c.cfg.AverPeriod > 0 && c.now().Sub(c.lastSave) >= c.cfg.AverPeriod {
		return c.saveLocked()
	}
	return nil
}

// fencedLocked counts and reports a fenced push. Called with c.mu held.
func (c *Collector) fencedLocked(o PushOrigin, snap stat.Snapshot, why string) error {
	c.metrics.staleEpoch.Add(1)
	c.event(Event{Kind: EventStale, Worker: o.Worker, Samples: snap.N, Seq: o.Lease})
	return fmt.Errorf("collect: worker %d epoch %d lease %d: %s: %w", o.Worker, o.Epoch, o.Lease, why, ErrFenced)
}

// validateSnap rejects snapshots that are internally inconsistent or
// have the wrong dimensions for this run.
func (c *Collector) validateSnap(snap stat.Snapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if snap.Nrow != c.meta.Nrow || snap.Ncol != c.meta.Ncol {
		return fmt.Errorf("stat: snapshot is %d×%d, run is %d×%d", snap.Nrow, snap.Ncol, c.meta.Nrow, c.meta.Ncol)
	}
	return nil
}

// stampedMetaLocked returns the run metadata with the worker count
// updated to what the collector has actually seen (the RPC transport
// hands out indices dynamically, so the configured count can be stale).
func (c *Collector) stampedMetaLocked() store.RunMeta {
	meta := c.meta
	if c.registered > meta.Workers {
		meta.Workers = c.registered
	}
	return meta
}

// Save forces an averaging + save cycle regardless of AverPeriod.
func (c *Collector) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Collector) saveLocked() error {
	t0 := c.now()
	var err error
	if c.dir != nil {
		rep := c.total.Report(c.meta.Gamma)
		meta := c.stampedMetaLocked()
		if e := c.dir.SaveResults(rep, meta); e != nil {
			err = e
		}
		if e := c.dir.SaveCheckpoint(c.total.Snapshot(), meta); e != nil && err == nil {
			err = e
		}
	}
	c.lastSave = c.now()
	elapsed := c.lastSave.Sub(t0)
	if err != nil {
		if c.saveErr == nil {
			c.saveErr = err
		}
		return err
	}
	c.metrics.saves.Add(1)
	c.metrics.saveNanos.Add(int64(elapsed))
	c.metrics.saveSeconds.Observe(elapsed.Seconds())
	c.event(Event{Kind: EventSave, Samples: c.total.N(), Elapsed: elapsed})
	if c.cfg.OnSave != nil {
		c.cfg.OnSave(c.progressLocked())
	}
	return nil
}

func (c *Collector) progressLocked() Progress {
	rep := c.total.Report(c.meta.Gamma)
	return Progress{
		N:         rep.N,
		MaxAbsErr: rep.MaxAbsErr,
		MaxRelErr: rep.MaxRelErr,
		MaxVar:    rep.MaxVar,
		Elapsed:   c.now().Sub(c.start),
	}
}

// Finalize performs the final averaging + save and returns the merged
// report. If any save — this one or an earlier periodic one — failed,
// Finalize returns that first error instead.
func (c *Collector) Finalize() (stat.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.saveLocked() // error is sticky in saveErr
	if c.saveErr != nil {
		return stat.Report{}, c.saveErr
	}
	return c.total.Report(c.meta.Gamma), nil
}

// Report computes the current derived statistics without saving.
func (c *Collector) Report() stat.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total.Report(c.meta.Gamma)
}

// Progress returns the current progress snapshot without saving.
func (c *Collector) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked()
}

// N returns the current total sample volume, including any resumed
// base.
func (c *Collector) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total.N()
}

// BaseN returns the sample volume the run started from (zero for a
// fresh run, the previous run's volume after a resume).
func (c *Collector) BaseN() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.baseN
}

// TargetReached reports whether the run's new-sample target (meta
// MaxSV) has been met. A non-positive target never completes — the
// paper's "endless simulation" mode.
func (c *Collector) TargetReached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta.MaxSV > 0 && c.total.N()-c.baseN >= c.meta.MaxSV
}

// Metrics returns a consistent snapshot of the collector's counters.
func (c *Collector) Metrics() MetricsSnapshot {
	return c.metrics.snapshot()
}

// event delivers e to the configured hook, if any. Called with c.mu
// held.
func (c *Collector) event(e Event) {
	if c.cfg.Hook != nil {
		c.cfg.Hook(e)
	}
}
