package collect_test

// Cross-transport conformance: the same workload driven through the
// goroutine transport (internal/core) and the net/rpc transport
// (internal/cluster) must produce the same final statistics, because
// both are now thin shells around one collect.Collector. This is the
// guard against the failure mode the engine extraction exists to
// prevent — two transports silently drifting apart statistically
// (Lubachevsky's parallel-vs-serial discrepancy).

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/workload"

	// The registry-wide conformance sweep iterates every built-in.
	_ "parmonc/internal/workload/builtin"
)

// countingFactory returns realizations that ignore the RNG stream and
// emit a deterministic value sequence indexed by call count. With one
// worker per transport, both transports then merge the exact same
// snapshot sequence in the exact same order — regardless of the worker
// index each transport assigns (core starts at 0, cluster at 1) — so
// the final moments must match bit for bit.
func countingFactory(int) (core.Realization, error) {
	var k float64
	return func(_ *rng.Stream, out []float64) error {
		for i := range out {
			out[i] = 2 + math.Sin(1.3*k+0.7*float64(i))
		}
		k++
		return nil
	}, nil
}

func runGoroutineTransport(t *testing.T, L int64) stat.Report {
	t.Helper()
	res, err := core.RunFactory(context.Background(), core.Config{
		Nrow:           2,
		Ncol:           2,
		MaxSamples:     L,
		Workers:        1,
		StrictExchange: true, // push after every realization, like PassEvery=1
		WorkDir:        t.TempDir(),
	}, countingFactory)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report
}

func runRPCTransport(t *testing.T, L int64) stat.Report {
	t.Helper()
	spec := cluster.JobSpec{
		Nrow:       2,
		Ncol:       2,
		MaxSamples: L,
		Params:     rng.DefaultParams(),
		Gamma:      stat.DefaultConfidenceCoefficient,
		PassEvery:  1,
	}
	coord, err := cluster.NewCoordinator(spec, cluster.CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	workerErr := make(chan error, 1)
	go func() { workerErr <- cluster.RunWorker(ctx, coord.Addr(), countingFactory) }()

	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workerErr; err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTransportConformanceBitIdentical(t *testing.T) {
	const L = 200
	a := runGoroutineTransport(t, L)
	b := runRPCTransport(t, L)

	if a.N != L || b.N != L {
		t.Fatalf("N: goroutine %d, rpc %d, want %d", a.N, b.N, L)
	}
	for i := range a.Mean {
		if a.Mean[i] != b.Mean[i] {
			t.Errorf("Mean[%d]: %v vs %v", i, a.Mean[i], b.Mean[i])
		}
		if a.Var[i] != b.Var[i] {
			t.Errorf("Var[%d]: %v vs %v", i, a.Var[i], b.Var[i])
		}
		if a.AbsErr[i] != b.AbsErr[i] {
			t.Errorf("AbsErr[%d]: %v vs %v", i, a.AbsErr[i], b.AbsErr[i])
		}
	}
}

// conformanceOverrides shrink the expensive workloads so the
// registry-wide sweep stays fast; identity checking is orthogonal to
// parameter magnitude, and the small settings still exercise every
// scenario package's full realization path.
var conformanceOverrides = map[string]workload.Values{
	"diffusion":   {"h": 0.01, "tend": 1, "nout": 10},
	"mm1":         {"warmup": 50, "batch": 50},
	"ising":       {"l": 8, "sweeps": 10, "warmup": 4},
	"dsmc":        {"n": 40},
	"coagulation": {"n0": 50, "volume": 50},
	"chem":        {"a0": 40},
}

// TestRegistryConformanceBitIdentical sweeps every registered workload
// through both transports under the conditions that make runs
// bit-comparable: one worker per transport, per-realization exchange,
// and a single lease covering the whole run, so both transports
// enumerate the identical substream partition in the identical merge
// order. Any difference — in the RNG coordinates a transport hands its
// worker, in merge arithmetic, in push sequencing — shows up as a
// bit-level divergence on some workload.
func TestRegistryConformanceBitIdentical(t *testing.T) {
	const L = 40
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			id, err := d.Identity(conformanceOverrides[d.Name])
			if err != nil {
				t.Fatal(err)
			}
			v := workload.Values(id.Params)

			factory, err := d.Factory(v)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.RunFactory(context.Background(), core.Config{
				Nrow:           id.Nrow,
				Ncol:           id.Ncol,
				MaxSamples:     L,
				Workers:        1,
				LeaseSize:      L,
				StrictExchange: true, // push after every realization, like PassEvery=1
				WorkDir:        t.TempDir(),
			}, factory)
			if err != nil {
				t.Fatal(err)
			}
			a := res.Report

			spec := cluster.JobSpec{
				Nrow:       id.Nrow,
				Ncol:       id.Ncol,
				MaxSamples: L,
				Params:     rng.DefaultParams(),
				Gamma:      stat.DefaultConfidenceCoefficient,
				PassEvery:  1,
				LeaseSize:  L,
				Workload:   id,
			}
			coord, err := cluster.NewCoordinator(spec, cluster.CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			workerFactory, err := d.Factory(v)
			if err != nil {
				t.Fatal(err)
			}
			workerErr := make(chan error, 1)
			go func() {
				_, err := cluster.RunResilientWorker(ctx, coord.Addr(),
					cluster.WorkerConfig{Workload: id}, workerFactory)
				workerErr <- err
			}()
			b, err := coord.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-workerErr; err != nil {
				t.Fatal(err)
			}

			if a.N != L || b.N != L {
				t.Fatalf("N: goroutine %d, rpc %d, want %d", a.N, b.N, L)
			}
			for i := range a.Mean {
				if a.Mean[i] != b.Mean[i] {
					t.Errorf("Mean[%d]: %v vs %v", i, a.Mean[i], b.Mean[i])
				}
				if a.Var[i] != b.Var[i] {
					t.Errorf("Var[%d]: %v vs %v", i, a.Var[i], b.Var[i])
				}
				if a.AbsErr[i] != b.AbsErr[i] {
					t.Errorf("AbsErr[%d]: %v vs %v", i, a.AbsErr[i], b.AbsErr[i])
				}
			}
		})
	}
}

// With several workers the merge order is scheduling-dependent and the
// RPC transport may overshoot the target, so only statistical agreement
// can be asserted: both transports sampling U(0,1) from the same RNG
// hierarchy must land on the same mean within Monte Carlo error.
func TestTransportConformanceMultiWorker(t *testing.T) {
	const L = 4000
	uniform := func(int) (core.Realization, error) {
		return func(src *rng.Stream, out []float64) error {
			out[0] = src.Float64()
			return nil
		}, nil
	}

	res, err := core.RunFactory(context.Background(), core.Config{
		Nrow:       1,
		Ncol:       1,
		MaxSamples: L,
		Workers:    4,
		PassPeriod: time.Millisecond,
		WorkDir:    t.TempDir(),
	}, uniform)
	if err != nil {
		t.Fatal(err)
	}

	spec := cluster.JobSpec{
		Nrow:       1,
		Ncol:       1,
		MaxSamples: L,
		Params:     rng.DefaultParams(),
		Gamma:      stat.DefaultConfidenceCoefficient,
		PassEvery:  100,
	}
	coord, err := cluster.NewCoordinator(spec, cluster.CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		go cluster.RunWorker(ctx, coord.Addr(), uniform)
	}
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.Report.N < L || rep.N < L {
		t.Fatalf("N: goroutine %d, rpc %d, want >= %d", res.Report.N, rep.N, L)
	}
	// U(0,1): σ/√L ≈ 0.0046 at L=4000; 5σ keeps this deterministic in
	// practice while still catching a broken merge.
	if d := math.Abs(res.Report.MeanAt(0, 0) - rep.MeanAt(0, 0)); d > 0.025 {
		t.Fatalf("transport means diverge: %v vs %v (Δ=%v)",
			res.Report.MeanAt(0, 0), rep.MeanAt(0, 0), d)
	}
}

// --- Sharded-collector interleaving conformance -----------------------
//
// The sharded collector's contract: the report is a function of each
// worker's own push sequence only — the cross-worker arrival order must
// never reach the statistics. The sweeps below drive the same
// per-worker push lists through (a) seeded-shuffled serial
// interleavings and (b) genuinely concurrent goroutine schedules, and
// require every report to be bit-identical to a worker-major reference.

// interleaveMeta describes the direct-collector sweep run.
func interleaveMeta(workers int) store.RunMeta {
	return store.RunMeta{
		SeqNum: 1, Nrow: 2, Ncol: 2, Workers: workers,
		Params: rng.DefaultParams(), Gamma: stat.DefaultConfidenceCoefficient,
		StartedAt: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
	}
}

// interleavePushes builds worker w's deterministic push list from the
// counting sequence (distinct phase per worker).
func interleavePushes(w, count int) []stat.Snapshot {
	out := make([]stat.Snapshot, count)
	row := make([]float64, 4)
	for k := range out {
		a := stat.New(2, 2)
		for i := range row {
			row[i] = 2 + math.Sin(1.3*float64(k)+0.7*float64(i)+11*float64(w))
		}
		if err := a.Add(row); err != nil {
			panic(err)
		}
		out[k] = a.Snapshot()
	}
	return out
}

// momentsBitsEqual compares the moment statistics of two reports for
// exact bit identity (MeanSimTime is wall-clock-derived and excluded).
func momentsBitsEqual(a, b stat.Report) (int, bool) {
	if a.N != b.N {
		return -1, false
	}
	for i := range a.Mean {
		for _, pair := range [][2]float64{
			{a.Mean[i], b.Mean[i]}, {a.Var[i], b.Var[i]},
			{a.AbsErr[i], b.AbsErr[i]}, {a.RelErr[i], b.RelErr[i]},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				return i, false
			}
		}
	}
	return 0, true
}

func TestShardedInterleavingBitIdentical(t *testing.T) {
	const (
		workers = 8
		count   = 40
		trials  = 6
	)
	pushes := make([][]stat.Snapshot, workers)
	for w := range pushes {
		pushes[w] = interleavePushes(w, count)
	}
	newEngine := func() *collect.Collector {
		eng, err := collect.New(nil, interleaveMeta(workers), collect.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			eng.Register(w)
		}
		return eng
	}

	// Worker-major reference: all of worker 0's pushes, then worker 1's…
	ref := newEngine()
	for w := range pushes {
		for seq, s := range pushes[w] {
			if err := ref.PushSeq(w, uint64(seq+1), s); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := ref.Report()

	// (a) Seeded-shuffled serial interleavings: deliver pushes in a
	// random global order that preserves each worker's own order.
	for trial := 0; trial < trials; trial++ {
		eng := newEngine()
		r := rand.New(rand.NewSource(int64(trial)*131 + 7))
		cursor := make([]int, workers)
		remaining := workers * count
		for remaining > 0 {
			w := r.Intn(workers)
			if cursor[w] >= count {
				continue
			}
			if err := eng.PushSeq(w, uint64(cursor[w]+1), pushes[w][cursor[w]]); err != nil {
				t.Fatal(err)
			}
			cursor[w]++
			remaining--
		}
		if i, ok := momentsBitsEqual(eng.Report(), want); !ok {
			t.Fatalf("shuffled trial %d: report differs from worker-major reference at entry %d", trial, i)
		}
	}

	// (b) Concurrent goroutine schedules: the scheduler picks the
	// interleaving; saves run concurrently to stress the fold.
	for trial := 0; trial < trials; trial++ {
		eng := newEngine()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq, s := range pushes[w] {
					if err := eng.PushSeq(w, uint64(seq+1), s); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					if seq%16 == 0 {
						_ = eng.Report() // mid-run folds must not disturb the totals
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if i, ok := momentsBitsEqual(eng.Report(), want); !ok {
			t.Fatalf("concurrent trial %d: report differs from worker-major reference at entry %d", trial, i)
		}
	}
}

// TestMultiWorkerTransportDeterministic: with the sharded collector the
// goroutine transport's report is bit-deterministic even at Workers > 1
// — the lease partition fixes each worker's realization subsequence and
// the fold fixes the reduction order, so the goroutine scheduler has
// nothing left to perturb. (The serialized collector could not promise
// this: cross-worker merge order followed the scheduler.)
func TestMultiWorkerTransportDeterministic(t *testing.T) {
	run := func() stat.Report {
		res, err := core.RunFactory(context.Background(), core.Config{
			Nrow:           2,
			Ncol:           2,
			MaxSamples:     240,
			Workers:        4,
			LeaseSize:      60,
			StrictExchange: true,
			WorkDir:        t.TempDir(),
		}, countingFactory)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	want := run()
	for trial := 0; trial < 3; trial++ {
		if i, ok := momentsBitsEqual(run(), want); !ok {
			t.Fatalf("trial %d: multi-worker report not bit-deterministic (entry %d)", trial, i)
		}
	}
}
