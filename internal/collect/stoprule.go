package collect

// StopRule is a statistical completion criterion: given the current
// progress snapshot it reports whether the run has reached its target
// accuracy. It is the paper's "control the absolute and relative
// stochastic errors during the simulation" promoted from a per-program
// OnSave idiom (examples/errorcontrol cancelling its own context) to a
// first-class engine option: set Config.Stop and the collector latches
// the verdict the first time the rule fires, after an averaging cycle
// or an explicit EvalStop. The engine never stops anything itself —
// transports poll StopSatisfied and wind the run down, exactly as they
// poll TargetReached for the sample-volume target.
//
// A rule must be a pure function of its Progress argument: it may be
// evaluated from any goroutine that triggers a save, and it must not
// call back into the Collector.
type StopRule func(Progress) bool

// TargetRelErr returns the stop rule of the error-control workflow:
// the run is complete once the maximal relative error over the
// realization matrix — the γ·σ̄·L^(−1/2) confidence bound relative to
// the mean, in percent — has dropped below maxRelErrPct. The bound is
// meaningless at tiny sample volumes (σ̄ is itself an estimate, and an
// all-zero prefix reports zero error), so the rule only fires once at
// least minSamples realizations have merged; minSamples <= 0 selects
// the default of 1000.
func TargetRelErr(maxRelErrPct float64, minSamples int64) StopRule {
	if minSamples <= 0 {
		minSamples = 1000
	}
	return func(p Progress) bool {
		return p.N >= minSamples && p.MaxRelErr < maxRelErrPct
	}
}

// EvalStop evaluates the configured stop rule against the current
// progress (folding the shards) and returns the latched verdict. With
// no rule configured it reports false. The verdict is sticky: once a
// rule has fired, EvalStop and StopSatisfied keep reporting true even
// if later samples would push the error back over the target —
// stopping is a one-way decision, and re-opening it would make the
// stopping sample volume depend on evaluation timing.
func (c *Collector) EvalStop() bool {
	if c.cfg.Stop == nil {
		return false
	}
	if c.stopHit.Load() {
		return true
	}
	if c.cfg.Stop(c.Progress()) {
		c.stopHit.Store(true)
	}
	return c.stopHit.Load()
}

// StopSatisfied reports whether the configured stop rule has fired
// (always false without one). It only reads the latched verdict —
// rules are evaluated after averaging cycles and by EvalStop.
func (c *Collector) StopSatisfied() bool {
	return c.stopHit.Load()
}
