package collect_test

import (
	"errors"
	"math"
	"testing"

	"parmonc/internal/collect"
	"parmonc/internal/stat"
)

// real8 is a deterministic "realization" for lease proc p at absolute
// position i — the same inputs the interrupted and uninterrupted runs
// both feed the collector.
func real8(p int, i uint64) []float64 {
	x := float64(p)*100 + float64(i)
	return []float64{x / 7, math.Sqrt(x + 1)}
}

func bitIdentical(t *testing.T, got, want stat.Report) {
	t.Helper()
	if got.N != want.N || got.Nrow != want.Nrow || got.Ncol != want.Ncol {
		t.Fatalf("shape/N: got %dx%d N=%d, want %dx%d N=%d",
			got.Nrow, got.Ncol, got.N, want.Nrow, want.Ncol, want.N)
	}
	mats := []struct {
		name     string
		got, ref []float64
	}{
		{"mean", got.Mean, want.Mean},
		{"var", got.Var, want.Var},
		{"abs_err", got.AbsErr, want.AbsErr},
		{"rel_err", got.RelErr, want.RelErr},
	}
	for _, m := range mats {
		for i := range m.ref {
			if math.Float64bits(m.got[i]) != math.Float64bits(m.ref[i]) {
				t.Errorf("%s[%d] = %v (bits %x), want %v (bits %x)", m.name, i,
					m.got[i], math.Float64bits(m.got[i]), m.ref[i], math.Float64bits(m.ref[i]))
			}
		}
	}
	if math.Float64bits(got.MaxAbsErr) != math.Float64bits(want.MaxAbsErr) ||
		math.Float64bits(got.MaxRelErr) != math.Float64bits(want.MaxRelErr) ||
		math.Float64bits(got.MaxVar) != math.Float64bits(want.MaxVar) {
		t.Errorf("max errors differ: got %v/%v/%v want %v/%v/%v",
			got.MaxAbsErr, got.MaxRelErr, got.MaxVar,
			want.MaxAbsErr, want.MaxRelErr, want.MaxVar)
	}
}

// TestRecoveryRoundTripBitIdentical is the collect-layer contract the
// service's crash recovery rests on: exporting the recovery image
// mid-run, restoring it into a fresh collector, and replaying only the
// unmerged lease remainders yields a final report bit-identical to the
// uninterrupted run's. The folded checkpoint could never provide this
// (float addition is not associative); the per-shard image must.
func TestRecoveryRoundTripBitIdentical(t *testing.T) {
	leases := []collect.Lease{
		{ID: 1, Proc: 1, Start: 0, Count: 4},
		{ID: 2, Proc: 2, Start: 0, Count: 4},
	}
	// One lease per worker; each worker pushes its window in two halves,
	// interleaved across workers exactly as the fleet would.
	// from/to are absolute stream positions; the lease ledger's Done
	// cursor is lease-local, hence the leaseStart argument.
	push := func(t *testing.T, c *collect.Collector, w int, epoch, seq, leaseID uint64, proc int, leaseStart, from, to uint64) {
		t.Helper()
		var rs [][]float64
		for i := from; i < to; i++ {
			rs = append(rs, real8(proc, i))
		}
		err := c.PushFrom(collect.PushOrigin{
			Worker: w, Epoch: epoch, Seq: seq, Lease: leaseID, Done: int64(to - leaseStart),
		}, snapOf(t, 1, 2, rs...))
		if err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted baseline.
	base, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base.RegisterEpoch(1, 1)
	base.RegisterEpoch(2, 1)
	for i, l := range leases {
		if err := base.GrantLease(i+1, l); err != nil {
			t.Fatal(err)
		}
	}
	push(t, base, 1, 1, 1, 1, 1, 0, 0, 2)
	push(t, base, 2, 1, 1, 2, 2, 0, 0, 2)
	push(t, base, 1, 1, 2, 1, 1, 0, 2, 4)
	push(t, base, 2, 1, 2, 2, 2, 0, 2, 4)
	want, err := base.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: crash after the first half of each lease.
	crashed, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	crashed.RegisterEpoch(1, 1)
	crashed.RegisterEpoch(2, 1)
	for i, l := range leases {
		if err := crashed.GrantLease(i+1, l); err != nil {
			t.Fatal(err)
		}
	}
	push(t, crashed, 1, 1, 1, 1, 1, 0, 0, 2)
	push(t, crashed, 2, 1, 1, 2, 2, 0, 0, 2)
	img := crashed.ExportRecovery()

	// Two exports of the same state must be byte-identical (the image is
	// written periodically; determinism keeps rewrites comparable).
	img2 := crashed.ExportRecovery()
	if len(img.Shards) != len(img2.Shards) {
		t.Fatalf("unstable export: %d vs %d shards", len(img.Shards), len(img2.Shards))
	}

	restored, err := collect.New(openDir(t), testMeta(), collect.Config{Restore: &img})
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.N(); got != 4 {
		t.Fatalf("restored N = %d, want 4", got)
	}
	if restored.Active() != 0 {
		t.Fatal("restored shards must start inactive — their sessions died with the old incarnation")
	}

	// A zombie push with a pre-crash grant must fence, never merge.
	zerr := restored.PushFrom(collect.PushOrigin{
		Worker: 1, Epoch: 1, Seq: 2, Lease: 1, Done: 4,
	}, snapOf(t, 1, 2, real8(1, 2), real8(1, 3)))
	if !errors.Is(zerr, collect.ErrFenced) {
		t.Fatalf("zombie push returned %v, want ErrFenced", zerr)
	}
	if restored.N() != 4 {
		t.Fatalf("zombie push changed N to %d", restored.N())
	}

	// The new incarnation re-registers the workers under epoch 2 and
	// reissues the unmerged remainders as fresh leases on the same procs.
	restored.RegisterEpoch(1, 2)
	restored.RegisterEpoch(2, 2)
	if err := restored.GrantLease(1, collect.Lease{ID: 11, Proc: 1, Start: 2, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if err := restored.GrantLease(2, collect.Lease{ID: 12, Proc: 2, Start: 2, Count: 2}); err != nil {
		t.Fatal(err)
	}
	push(t, restored, 1, 2, 1, 11, 1, 2, 2, 4)
	push(t, restored, 2, 2, 1, 12, 2, 2, 2, 4)

	got, err := restored.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
}

// TestRestoreRejectsMismatches: a recovery image from a different
// experiment shape or subsequence must be refused outright.
func TestRestoreRejectsMismatches(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterEpoch(1, 1)
	if err := c.Push(1, snapOf(t, 1, 2, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	img := c.ExportRecovery()

	wrongDims := testMeta()
	wrongDims.Ncol = 3
	if _, err := collect.New(openDir(t), wrongDims, collect.Config{Restore: &img}); err == nil {
		t.Fatal("restore accepted an image with the wrong dimensions")
	}
	wrongSeq := testMeta()
	wrongSeq.SeqNum = 9
	if _, err := collect.New(openDir(t), wrongSeq, collect.Config{Restore: &img}); err == nil {
		t.Fatal("restore accepted an image from another experiments subsequence")
	}
	if _, err := collect.New(openDir(t), testMeta(), collect.Config{
		Restore: &img, Resume: true,
	}); err == nil {
		t.Fatal("Restore and Resume are mutually exclusive")
	}
}
