package collect_test

import (
	"errors"
	"testing"
	"time"

	"parmonc/internal/collect"
)

func TestPartitionLeases(t *testing.T) {
	cases := []struct {
		max, size int64
		want      []collect.Lease
	}{
		{0, 10, nil},
		{-5, 10, nil},
		{100, 0, nil},
		{100, 100, []collect.Lease{{Proc: 1, Start: 0, Count: 100}}},
		{100, 40, []collect.Lease{
			{Proc: 1, Start: 0, Count: 40},
			{Proc: 2, Start: 0, Count: 40},
			{Proc: 3, Start: 0, Count: 20}, // trailing remainder is short
		}},
		{3, 10, []collect.Lease{{Proc: 1, Start: 0, Count: 3}}},
	}
	for _, tc := range cases {
		got := collect.PartitionLeases(tc.max, tc.size)
		if len(got) != len(tc.want) {
			t.Errorf("PartitionLeases(%d, %d) = %v, want %v", tc.max, tc.size, got, tc.want)
			continue
		}
		var total int64
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("PartitionLeases(%d, %d)[%d] = %v, want %v", tc.max, tc.size, i, got[i], tc.want[i])
			}
			total += got[i].Count
		}
		if tc.max > 0 && tc.size > 0 && total != tc.max {
			t.Errorf("PartitionLeases(%d, %d) covers %d realizations", tc.max, tc.size, total)
		}
	}
}

func TestLeaseRemainder(t *testing.T) {
	l := collect.Lease{ID: 7, Proc: 3, Start: 10, Count: 20}
	r := l.Remainder(5)
	want := collect.Lease{Proc: 3, Start: 15, Count: 15}
	if r != want {
		t.Fatalf("Remainder(5) = %v, want %v (fresh ID stamped at re-grant)", r, want)
	}
	if r := l.Remainder(0); r.Count != 20 || r.Start != 10 {
		t.Fatalf("Remainder(0) = %v, want the full window", r)
	}
	if r := l.Remainder(20); r.Count != 0 {
		t.Fatalf("Remainder(full) = %v, want empty", r)
	}
	if r := l.Remainder(25); r.Count != 0 {
		t.Fatalf("Remainder(overshoot) = %v, want empty", r)
	}
	if r := l.Remainder(-3); r.Count != 20 {
		t.Fatalf("Remainder(negative) = %v, want the full window", r)
	}
}

// TestStaleEpochPushFenced is the regression test for the
// zombie-worker dedup hole: reusing a pruned worker's index used to
// reset the sequence space, so a zombie's retried push (same index,
// low seq) would merge as if it came from the fresh session. With
// epoch fencing the zombie's push is acknowledged (ErrFenced, so the
// transport stops retrying) but never merged, and the rejection is
// counted and journaled.
func TestStaleEpochPushFenced(t *testing.T) {
	var stale int
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		Hook: func(e collect.Event) {
			if e.Kind == collect.EventStale {
				stale++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Session 1 registers under epoch 1 and merges seq 1.
	c.RegisterEpoch(1, 1)
	if err := c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 1, Seq: 1},
		snapOf(t, 1, 2, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}

	// The worker goes silent and is pruned; its index is re-admitted as
	// a fresh session under epoch 2, whose sequence space restarts at 1.
	if err := c.Deregister(1); err != nil {
		t.Fatal(err)
	}
	c.RegisterEpoch(1, 2)
	if err := c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 2, Seq: 1},
		snapOf(t, 1, 2, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}

	// The zombie wakes up and retries its old push under epoch 1 with a
	// seq the fresh session has not used yet. Without the fence this
	// would merge; with it the push is fenced.
	err = c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 1, Seq: 2},
		snapOf(t, 1, 2, []float64{9, 9}))
	if !errors.Is(err, collect.ErrFenced) {
		t.Fatalf("zombie push returned %v, want ErrFenced", err)
	}
	if got := c.N(); got != 2 {
		t.Fatalf("N = %d, want 2 (zombie push must not merge)", got)
	}
	if m := c.Metrics(); m.StaleEpochPushes != 1 {
		t.Fatalf("StaleEpochPushes = %d, want 1", m.StaleEpochPushes)
	}
	if stale != 1 {
		t.Fatalf("EventStale fired %d times, want 1", stale)
	}

	// A fenced-out worker that was pruned entirely is also fenced, not
	// merged, when it pushes with any nonzero epoch.
	if err := c.Deregister(1); err != nil {
		t.Fatal(err)
	}
	err = c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 2, Seq: 5},
		snapOf(t, 1, 2, []float64{9, 9}))
	if !errors.Is(err, collect.ErrFenced) {
		t.Fatalf("pruned-worker push returned %v, want ErrFenced", err)
	}
	if got := c.N(); got != 2 {
		t.Fatalf("N = %d after pruned-worker push, want 2", got)
	}
}

// TestLeaseLedgerTracksMergedPrefix: lease pushes must advance the done
// ledger by exactly the snapshot volume; completion fires the metric
// and the remainder after a revocation is the unmerged tail only.
func TestLeaseLedgerTracksMergedPrefix(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterEpoch(1, 1)
	l := collect.Lease{ID: 1, Proc: 1, Start: 0, Count: 4}
	if err := c.GrantLease(1, l); err != nil {
		t.Fatal(err)
	}

	// done must advance by the snapshot's volume.
	err = c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 1, Seq: 1, Lease: 1, Done: 3},
		snapOf(t, 1, 2, []float64{1, 2}, []float64{3, 4})) // volume 2, claims 3
	if err == nil || errors.Is(err, collect.ErrFenced) {
		t.Fatalf("inconsistent ledger push returned %v, want plain rejection", err)
	}
	if err := c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 1, Seq: 2, Lease: 1, Done: 2},
		snapOf(t, 1, 2, []float64{1, 2}, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if done, count, ok := c.LeaseProgress(1); !ok || done != 2 || count != 4 {
		t.Fatalf("LeaseProgress = %d/%d/%v, want 2/4/true", done, count, ok)
	}

	// Revoking mid-lease returns only the unmerged tail.
	rem := c.RevokeWorker(1)
	if len(rem) != 1 || rem[0] != (collect.Lease{Proc: 1, Start: 2, Count: 2}) {
		t.Fatalf("remainders = %v, want the unmerged tail [proc 1 start 2 count 2]", rem)
	}

	// A straggling push against the revoked lease is fenced.
	err = c.PushFrom(collect.PushOrigin{Worker: 1, Epoch: 1, Seq: 3, Lease: 1, Done: 4},
		snapOf(t, 1, 2, []float64{5, 6}, []float64{7, 8}))
	if !errors.Is(err, collect.ErrFenced) {
		t.Fatalf("push against revoked lease returned %v, want ErrFenced", err)
	}

	// The reissued remainder completes under a fresh session.
	c.RegisterEpoch(2, 1)
	re := rem[0]
	re.ID = 2
	if err := c.GrantLease(2, re); err != nil {
		t.Fatal(err)
	}
	if err := c.PushFrom(collect.PushOrigin{Worker: 2, Epoch: 1, Seq: 1, Lease: 2, Done: 2},
		snapOf(t, 1, 2, []float64{5, 6}, []float64{7, 8})); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.LeasesCompleted != 1 {
		t.Fatalf("LeasesCompleted = %d, want 1", m.LeasesCompleted)
	}
	if got := c.N(); got != 4 {
		t.Fatalf("N = %d, want 4 (prefix + reissued tail)", got)
	}
}

// TestReclaimLeases: reclaiming revokes the worker's outstanding leases
// and returns their remainders without deregistering it — the
// idempotent-acquire primitive for lost grant replies.
func TestReclaimLeases(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterEpoch(1, 1)
	if err := c.GrantLease(1, collect.Lease{ID: 1, Proc: 1, Count: 10}); err != nil {
		t.Fatal(err)
	}
	rem := c.ReclaimLeases(1)
	if len(rem) != 1 || rem[0].Count != 10 {
		t.Fatalf("remainders = %v, want the full window back", rem)
	}
	if !c.IsActive(1) {
		t.Fatal("reclaim must not deregister the worker")
	}
	if c.Metrics().PrunedWorkers != 0 {
		t.Fatal("reclaim must not count as a prune")
	}
	if rem := c.ReclaimLeases(1); len(rem) != 0 {
		t.Fatalf("second reclaim = %v, want nothing", rem)
	}
}

// TestPruneStaleMonotonicClock drives liveness through an injected
// monotonic clock: ages are measured on Config.Mono readings only, so a
// wall-clock step (Config.Now jumping hours ahead, as under NTP
// correction) cannot make a healthy worker look stale.
func TestPruneStaleMonotonicClock(t *testing.T) {
	var mono time.Duration
	wall := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		Now:  func() time.Time { return wall },
		Mono: func() time.Duration { return mono },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(1)
	c.Register(2)

	// The wall clock leaps four hours; the monotonic clock has barely
	// moved. Nobody may be pruned.
	wall = wall.Add(4 * time.Hour)
	if n := c.PruneStale(time.Minute); n != 0 {
		t.Fatalf("wall-clock jump pruned %d workers", n)
	}
	if got := c.Overdue(time.Minute); len(got) != 0 {
		t.Fatalf("wall-clock jump made %v overdue", got)
	}

	// Worker 2 heartbeats at mono 50s; worker 1 stays silent. At mono
	// 70s with a 60s budget only worker 1 is overdue, then pruned.
	mono = 50 * time.Second
	if err := c.Touch(2, 0); err != nil {
		t.Fatal(err)
	}
	mono = 70 * time.Second
	over := c.Overdue(time.Minute)
	if len(over) != 1 || over[0] != 1 {
		t.Fatalf("Overdue = %v, want [1]", over)
	}
	if n := c.PruneStale(time.Minute); n != 1 {
		t.Fatalf("pruned %d workers, want 1", n)
	}
	if c.IsActive(1) || !c.IsActive(2) {
		t.Fatalf("active set wrong after prune: worker1=%v worker2=%v", c.IsActive(1), c.IsActive(2))
	}
}
