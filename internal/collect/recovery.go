package collect

import (
	"fmt"
	"sort"

	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Recovery support: exporting a collector's full working state so the
// *same* run can be restarted bit-identically after a coordinator
// crash, and importing it again in New (Config.Restore).
//
// The plain checkpoint cannot serve this purpose. It stores the folded
// total, and float addition is not associative: restarting from the
// total as a new base would change the reduction tree (base' + fresh
// shards instead of base + original shards), and with it the report
// bits. The recovery image instead captures every shard's staging
// accumulator and lease ledger — each frozen consistently under its own
// shard lock, which is exactly the consistency the merge path maintains
// (a lease's done cursor and its shard's sums advance under one lock).
// Restoring the shards and replaying only the uncomputed lease
// remainders reproduces the exact fold an uninterrupted run performs.

// ExportRecovery captures the collector's recovery image: base moments,
// every shard's staging accumulator, dedup cursor and lease ledger.
// Each shard is captured atomically under its own lock; shards appear
// in ascending worker order and leases in ascending ID order, so two
// exports of identical state are byte-identical.
func (c *Collector) ExportRecovery() store.RecoveryState {
	rs := store.RecoveryState{
		Meta: c.stampedMeta(),
		Base: c.baseSnap,
	}
	for _, sh := range c.shardList() {
		sh.mu.Lock()
		rec := store.ShardRecord{
			Worker:  sh.worker,
			Epoch:   sh.epoch,
			LastSeq: sh.lastSeq,
		}
		if sh.raw != nil {
			rec.Snap = sh.raw.Snapshot()
		} else {
			rec.Snap = sh.stable.Snapshot()
		}
		for id, ls := range sh.leases {
			rec.Leases = append(rec.Leases, store.LeaseLedgerEntry{
				ID:        id,
				Proc:      ls.lease.Proc,
				Start:     ls.lease.Start,
				Count:     ls.lease.Count,
				Done:      ls.done,
				Completed: ls.completed,
				Revoked:   ls.revoked,
			})
		}
		sh.mu.Unlock()
		sort.Slice(rec.Leases, func(i, j int) bool { return rec.Leases[i].ID < rec.Leases[j].ID })
		rs.Shards = append(rs.Shards, rec)
	}
	return rs
}

// SaveRecovery persists the recovery image into the collector's store.
func (c *Collector) SaveRecovery() error {
	if c.dir == nil {
		return fmt.Errorf("collect: recovery image requires a store")
	}
	return c.dir.SaveRecovery(c.ExportRecovery())
}

// restoreFrom rebuilds the shard map from a recovery image. Called from
// New before the collector is shared, so no locking is needed. Every
// restored shard starts inactive (its worker session died with the
// previous incarnation) and every incomplete lease is marked revoked:
// a zombie push against a pre-crash grant must fence, and the
// coordinator reissues the uncomputed remainders under fresh IDs.
func (c *Collector) restoreFrom(rs *store.RecoveryState) error {
	if rs.Meta.Nrow != c.meta.Nrow || rs.Meta.Ncol != c.meta.Ncol {
		return fmt.Errorf("collect: recovery image is %d×%d, this run is %d×%d",
			rs.Meta.Nrow, rs.Meta.Ncol, c.meta.Nrow, c.meta.Ncol)
	}
	if rs.Meta.SeqNum != c.meta.SeqNum {
		return fmt.Errorf("collect: recovery image is for experiments subsequence %d, this run uses %d",
			rs.Meta.SeqNum, c.meta.SeqNum)
	}
	var restored int64
	for _, rec := range rs.Shards {
		if _, dup := c.shards[rec.Worker]; dup {
			return fmt.Errorf("collect: recovery image repeats worker %d", rec.Worker)
		}
		acc, err := stat.FromSnapshot(rec.Snap)
		if err != nil {
			return fmt.Errorf("collect: restoring shard %d: %w", rec.Worker, err)
		}
		sh := &shard{
			worker:  rec.Worker,
			epoch:   rec.Epoch,
			lastSeq: rec.LastSeq,
			raw:     acc,
			leases:  map[uint64]*leaseState{},
		}
		for _, le := range rec.Leases {
			if _, dup := c.leaseIdx[le.ID]; dup {
				return fmt.Errorf("collect: recovery image repeats lease %d", le.ID)
			}
			sh.leases[le.ID] = &leaseState{
				lease:     Lease{ID: le.ID, Proc: le.Proc, Start: le.Start, Count: le.Count},
				epoch:     rec.Epoch,
				done:      le.Done,
				completed: le.Completed,
				revoked:   le.Revoked || !le.Completed,
			}
			c.leaseIdx[le.ID] = rec.Worker
		}
		c.shards[rec.Worker] = sh
		restored += rec.Snap.N
	}
	c.samples.Store(restored)
	return nil
}
