package collect

import (
	"math"
	"testing"
	"time"

	"parmonc/internal/stat"
	"parmonc/internal/store"
)

func TestTargetRelErrRule(t *testing.T) {
	rule := TargetRelErr(0.5, 100)
	cases := []struct {
		name string
		p    Progress
		want bool
	}{
		{"below min samples", Progress{N: 99, MaxRelErr: 0.1}, false},
		{"error above target", Progress{N: 1000, MaxRelErr: 0.6}, false},
		{"error at target", Progress{N: 1000, MaxRelErr: 0.5}, false},
		{"both satisfied", Progress{N: 100, MaxRelErr: 0.49}, true},
		{"infinite error", Progress{N: 100000, MaxRelErr: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if got := rule(c.p); got != c.want {
			t.Errorf("%s: rule(%+v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestTargetRelErrDefaultMinSamples(t *testing.T) {
	rule := TargetRelErr(1.0, 0)
	if rule(Progress{N: 999, MaxRelErr: 0.1}) {
		t.Fatal("rule fired below the default minimum of 1000 samples")
	}
	if !rule(Progress{N: 1000, MaxRelErr: 0.1}) {
		t.Fatal("rule did not fire at the default minimum of 1000 samples")
	}
}

// snapOf builds a subtotal snapshot of n realizations with value v.
func snapOf(t *testing.T, n int, v float64) stat.Snapshot {
	t.Helper()
	acc := stat.New(1, 1)
	for i := 0; i < n; i++ {
		if err := acc.Add([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	return acc.Snapshot()
}

func stopMeta() store.RunMeta {
	return store.RunMeta{Nrow: 1, Ncol: 1, Gamma: 3, StartedAt: time.Now()}
}

func TestCollectorStopRuleLatchesOnSave(t *testing.T) {
	fired := 0
	eng, err := New(nil, stopMeta(), Config{
		Stop: func(p Progress) bool {
			fired++
			return p.N >= 50
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(0)
	if eng.StopSatisfied() {
		t.Fatal("stop satisfied before any samples")
	}
	if err := eng.Push(0, snapOf(t, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	if eng.StopSatisfied() {
		t.Fatal("stop satisfied at N=10 with a rule requiring 50")
	}
	if err := eng.Push(0, snapOf(t, 40, 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	if !eng.StopSatisfied() {
		t.Fatal("stop not satisfied at N=50")
	}
	if fired == 0 {
		t.Fatal("rule was never evaluated")
	}
	// Latching: once fired, further saves must not consult the rule and
	// the verdict must not flip back even though the rule would now say
	// false again.
	evals := fired
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	if fired != evals {
		t.Fatalf("rule re-evaluated after latching (%d evals, had %d)", fired, evals)
	}
	if !eng.StopSatisfied() {
		t.Fatal("latched verdict flipped back")
	}
}

func TestCollectorEvalStopWithoutSave(t *testing.T) {
	eng, err := New(nil, stopMeta(), Config{Stop: TargetRelErr(100, 10)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(0)
	// Alternating values give a nonzero variance and a finite relative
	// error; with a 100% target the rule fires as soon as N >= 10.
	acc := stat.New(1, 1)
	for i := 0; i < 20; i++ {
		if err := acc.Add([]float64{float64(i%2) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Push(0, acc.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if eng.StopSatisfied() {
		t.Fatal("stop satisfied before any evaluation")
	}
	if !eng.EvalStop() {
		t.Fatal("EvalStop did not fire on a satisfied rule")
	}
	if !eng.StopSatisfied() {
		t.Fatal("EvalStop verdict did not latch")
	}
}

func TestCollectorNoStopRule(t *testing.T) {
	eng, err := New(nil, stopMeta(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(0)
	if err := eng.Push(0, snapOf(t, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if eng.EvalStop() || eng.StopSatisfied() {
		t.Fatal("stop reported satisfied with no rule configured")
	}
}
