package collect_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

func testMeta() store.RunMeta {
	return store.RunMeta{
		SeqNum:    1,
		Nrow:      1,
		Ncol:      2,
		MaxSV:     100,
		Workers:   2,
		Params:    rng.DefaultParams(),
		Gamma:     stat.DefaultConfidenceCoefficient,
		StartedAt: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
	}
}

// snapOf builds a subtotal snapshot holding the given realizations.
func snapOf(t *testing.T, nrow, ncol int, realizations ...[]float64) stat.Snapshot {
	t.Helper()
	a := stat.New(nrow, ncol)
	for _, r := range realizations {
		if err := a.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return a.Snapshot()
}

func openDir(t *testing.T) *store.Dir {
	t.Helper()
	d, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLifecycleAndMetrics(t *testing.T) {
	dir := openDir(t)
	var saves []collect.Progress
	c, err := collect.New(dir, testMeta(), collect.Config{
		SaveWorkerSnapshots: true,
		OnSave:              func(p collect.Progress) { saves = append(saves, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	c.Register(1)
	c.Register(1) // re-registration must not double-count
	if got := c.Active(); got != 2 {
		t.Fatalf("Active = %d, want 2", got)
	}

	if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 2}, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(1, snapOf(t, 1, 2, []float64{5, 6})); err != nil {
		t.Fatal(err)
	}
	if got := c.N(); got != 3 {
		t.Fatalf("N = %d, want 3", got)
	}

	rep, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 3 || rep.MeanAt(0, 0) != 3 || rep.MeanAt(0, 1) != 4 {
		t.Fatalf("bad report: N=%d means=%v", rep.N, rep.Mean)
	}
	if len(saves) != 1 || saves[0].N != 3 {
		t.Fatalf("OnSave calls = %+v, want one with N=3", saves)
	}

	m := c.Metrics()
	if m.Pushes != 2 || m.Merges != 2 || m.RejectedSnapshots != 0 {
		t.Fatalf("push/merge/reject = %d/%d/%d", m.Pushes, m.Merges, m.RejectedSnapshots)
	}
	if m.Saves != 1 || m.WorkerSnapshots != 2 || m.RegisteredWorkers != 2 {
		t.Fatalf("saves/workerSnaps/registered = %d/%d/%d", m.Saves, m.WorkerSnapshots, m.RegisteredWorkers)
	}

	// Everything the lifecycle promises on disk must be there.
	snap, _, err := dir.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != 3 {
		t.Fatalf("checkpoint N = %d, want 3", snap.N)
	}
	if _, _, err := dir.LoadBaseCheckpoint(); err != nil {
		t.Fatalf("base checkpoint missing: %v", err)
	}
	if snaps, _, err := dir.LoadWorkerSnapshots(); err != nil || len(snaps) != 2 {
		t.Fatalf("worker snapshots: %d, %v", len(snaps), err)
	}
}

func TestPushRejections(t *testing.T) {
	c, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}

	// Unknown worker.
	if err := c.Push(7, snapOf(t, 1, 2, []float64{9, 9})); err == nil ||
		!strings.Contains(err.Error(), "unknown worker") {
		t.Fatalf("unknown worker push: %v", err)
	}
	// Wrong dimensions.
	if err := c.Push(0, snapOf(t, 2, 2, []float64{1, 1, 1, 1})); err == nil {
		t.Fatal("wrong-dimension push accepted")
	}
	// Internally inconsistent snapshot.
	bad := snapOf(t, 1, 2, []float64{1, 1})
	bad.Sum = bad.Sum[:1]
	if err := c.Push(0, bad); err == nil {
		t.Fatal("malformed push accepted")
	}

	// None of the rejects may have touched the totals.
	if got := c.N(); got != 1 {
		t.Fatalf("N = %d after rejects, want 1", got)
	}
	m := c.Metrics()
	if m.Pushes != 4 || m.Merges != 1 || m.RejectedSnapshots != 3 {
		t.Fatalf("push/merge/reject = %d/%d/%d, want 4/1/3", m.Pushes, m.Merges, m.RejectedSnapshots)
	}
}

func TestHookEvents(t *testing.T) {
	var events []collect.Event
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		Hook: func(e collect.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(3)
	if err := c.Push(3, snapOf(t, 1, 2, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	c.Push(9, snapOf(t, 1, 2, []float64{1, 2})) // rejected
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind.String())
	}
	want := "push merge push reject save"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("event sequence %q, want %q", got, want)
	}
	if events[1].Worker != 3 || events[1].Samples != 1 {
		t.Fatalf("merge event = %+v", events[1])
	}
}

func TestStableMomentsMatchesRaw(t *testing.T) {
	push := func(c *collect.Collector) stat.Report {
		c.Register(0)
		for i := 0; i < 50; i++ {
			v := 1e6 + float64(i)*1e-3 // offset data: raw sums lose precision here
			if err := c.Push(0, snapOf(t, 1, 2, []float64{v, -v})); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	raw, err := collect.New(openDir(t), testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stable, err := collect.New(openDir(t), testMeta(), collect.Config{StableMoments: true})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := push(raw), push(stable)
	if r1.N != r2.N {
		t.Fatalf("N %d vs %d", r1.N, r2.N)
	}
	if math.Abs(r1.MeanAt(0, 0)-r2.MeanAt(0, 0)) > 1e-6 {
		t.Fatalf("means diverge: %v vs %v", r1.MeanAt(0, 0), r2.MeanAt(0, 0))
	}
	// The stable path must not produce a negative variance on this data.
	if r2.VarAt(0, 0) < 0 {
		t.Fatalf("stable variance negative: %v", r2.VarAt(0, 0))
	}
}

func TestPruneStale(t *testing.T) {
	clock := time.Unix(1000, 0)
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		Now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	c.Register(1)
	clock = clock.Add(30 * time.Second)
	if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 1})); err != nil {
		t.Fatal(err) // refreshes worker 0's liveness
	}
	clock = clock.Add(31 * time.Second)
	if n := c.PruneStale(time.Minute); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if c.IsActive(1) || !c.IsActive(0) {
		t.Fatalf("wrong worker pruned: active0=%v active1=%v", c.IsActive(0), c.IsActive(1))
	}
	if m := c.Metrics(); m.PrunedWorkers != 1 {
		t.Fatalf("PrunedWorkers = %d", m.PrunedWorkers)
	}
}

func TestPeriodicSaveUsesInjectedClock(t *testing.T) {
	clock := time.Unix(0, 0)
	c, err := collect.New(openDir(t), testMeta(), collect.Config{
		AverPeriod: 10 * time.Second,
		Now:        func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	for i := 0; i < 5; i++ {
		clock = clock.Add(3 * time.Second)
		if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 1})); err != nil {
			t.Fatal(err)
		}
	}
	// 15 simulated seconds of pushes with a 10 s period: exactly one
	// periodic save (at t=12), none from the earlier pushes.
	if m := c.Metrics(); m.Saves != 1 {
		t.Fatalf("Saves = %d, want 1", m.Saves)
	}
}

func TestInMemoryEngine(t *testing.T) {
	c, err := collect.New(nil, testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	if err := c.Push(0, snapOf(t, 1, 2, []float64{2, 4})); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 1 || rep.MeanAt(0, 0) != 2 {
		t.Fatalf("bad in-memory report: %+v", rep)
	}
	if m := c.Metrics(); m.Saves != 2 {
		t.Fatalf("Saves = %d, want 2", m.Saves)
	}
	// Resume cannot work without a store.
	if _, err := collect.New(nil, testMeta(), collect.Config{Resume: true}); err == nil {
		t.Fatal("resume with nil store accepted")
	}
}

func TestResumePaths(t *testing.T) {
	dir := openDir(t)

	// Nothing to resume from yet.
	meta := testMeta()
	if _, err := collect.New(dir, meta, collect.Config{Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "no previous simulation") {
		t.Fatalf("resume without checkpoint: %v", err)
	}

	// First run: 2 samples.
	c1, err := collect.New(dir, meta, collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c1.Register(0)
	if err := c1.Push(0, snapOf(t, 1, 2, []float64{1, 2}, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Finalize(); err != nil {
		t.Fatal(err)
	}

	// Same SeqNum must be rejected: base random numbers would repeat.
	if _, err := collect.New(dir, meta, collect.Config{Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "different experiments subsequence number") {
		t.Fatalf("same-seqnum resume: %v", err)
	}

	// Dimension change must be rejected.
	bad := meta
	bad.SeqNum = 2
	bad.Ncol = 3
	if _, err := collect.New(dir, bad, collect.Config{Resume: true}); err == nil {
		t.Fatal("dimension-mismatch resume accepted")
	}

	// A valid resume inherits the base volume.
	next := meta
	next.SeqNum = 2
	c2, err := collect.New(dir, next, collect.Config{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if c2.BaseN() != 2 || c2.N() != 2 {
		t.Fatalf("BaseN=%d N=%d, want 2/2", c2.BaseN(), c2.N())
	}
	if m := c2.Metrics(); m.ResumedSamples != 2 {
		t.Fatalf("ResumedSamples = %d", m.ResumedSamples)
	}
	c2.Register(0)
	if err := c2.Push(0, snapOf(t, 1, 2, []float64{5, 6})); err != nil {
		t.Fatal(err)
	}
	rep, err := c2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 3 || rep.MeanAt(0, 0) != 3 {
		t.Fatalf("resumed report N=%d mean=%v", rep.N, rep.MeanAt(0, 0))
	}
}

func TestTargetReached(t *testing.T) {
	meta := testMeta()
	meta.MaxSV = 2
	c, err := collect.New(nil, meta, collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	if c.TargetReached() {
		t.Fatal("target reached before any samples")
	}
	if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 1}, []float64{2, 2})); err != nil {
		t.Fatal(err)
	}
	if !c.TargetReached() {
		t.Fatal("target not detected at MaxSV")
	}

	// MaxSV <= 0 is the endless mode.
	meta.MaxSV = 0
	e, err := collect.New(nil, meta, collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Register(0)
	e.Push(0, snapOf(t, 1, 2, []float64{1, 1}))
	if e.TargetReached() {
		t.Fatal("endless run reported completion")
	}
}

func TestSaveErrorIsSticky(t *testing.T) {
	work := t.TempDir()
	dir, err := store.Open(work)
	if err != nil {
		t.Fatal(err)
	}
	c, err := collect.New(dir, testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	if err := c.Push(0, snapOf(t, 1, 2, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}

	// Break the store: replace the results directory with a file so the
	// next save cannot create its temp file.
	results := filepath.Join(work, store.DataDir, store.ResultsDir)
	if err := os.RemoveAll(results); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(results, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err == nil {
		t.Fatal("save against broken store succeeded")
	}

	if m := c.Metrics(); m.Saves != 0 {
		t.Fatalf("failed saves counted as successes: %d", m.Saves)
	}

	// Repair the store: Finalize's own save now succeeds, yet it must
	// still report the earlier failure — a partially-persisted run is
	// not trustworthy.
	if err := os.Remove(results); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(results, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finalize(); err == nil {
		t.Fatal("Finalize forgot the earlier save failure")
	}
}

func TestDeregister(t *testing.T) {
	c, err := collect.New(nil, testMeta(), collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(0)
	if err := c.Deregister(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(0); err == nil {
		t.Fatal("double deregister accepted")
	}
	if c.Active() != 0 {
		t.Fatalf("Active = %d", c.Active())
	}
}
