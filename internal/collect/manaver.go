package collect

import (
	"fmt"
	"os"
	"path/filepath"

	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Manaver recomputes the averaged results from the run-base checkpoint
// plus the per-worker snapshot files — the paper's manaver command
// (Sec. 3.4). It is used after a job was killed, when the worker files
// hold a larger sample volume than the last collector save. It rewrites
// the results files and the collector checkpoint and returns the merged
// report.
//
// It lives in the collector engine because it is the same merge — the
// 0-th processor's formula (5) — replayed from disk instead of from a
// transport.
func Manaver(workdir string) (stat.Report, error) {
	// Refuse before store.Open scaffolds an empty parmonc_data tree in
	// a directory that plainly holds no simulation to average.
	if _, err := os.Stat(filepath.Join(workdir, store.DataDir)); os.IsNotExist(err) {
		return stat.Report{}, fmt.Errorf("collect: manaver: no simulation has run in %s", workdir)
	}
	dir, err := store.Open(workdir)
	if err != nil {
		return stat.Report{}, err
	}
	baseSnap, meta, err := dir.LoadBaseCheckpoint()
	if err != nil {
		if os.IsNotExist(err) {
			return stat.Report{}, fmt.Errorf("collect: manaver: no simulation has run in %s", workdir)
		}
		return stat.Report{}, err
	}
	total, err := stat.FromSnapshot(baseSnap)
	if err != nil {
		return stat.Report{}, err
	}
	snaps, _, err := dir.LoadWorkerSnapshots()
	if err != nil {
		return stat.Report{}, err
	}
	for i, s := range snaps {
		if err := total.Merge(s); err != nil {
			return stat.Report{}, fmt.Errorf("collect: manaver: worker snapshot %d: %w", i, err)
		}
	}
	rep := total.Report(meta.Gamma)
	if err := dir.SaveResults(rep, meta); err != nil {
		return stat.Report{}, err
	}
	if err := dir.SaveCheckpoint(total.Snapshot(), meta); err != nil {
		return stat.Report{}, err
	}
	return rep, nil
}
