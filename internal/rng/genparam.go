package rng

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"parmonc/internal/u128"
)

// GenparamFile is the name of the parameter file the genparam command
// writes into the user's working directory (Sec. 3.5 of the paper). When
// present, the library uses the leap exponents and multipliers from this
// file instead of the defaults.
const GenparamFile = "parmonc_genparam.dat"

// GenparamData is the content of a parmonc_genparam.dat file: the three
// leap exponents chosen by the user and the corresponding leap
// multipliers Â(n_e), Â(n_p), Â(n_r).
type GenparamData struct {
	Params      Params
	ExpMult     u128.Uint128 // Â(n_e) = A^(2^ne) mod 2^128
	ProcMult    u128.Uint128 // Â(n_p)
	RealizeMult u128.Uint128 // Â(n_r)
}

// ComputeGenparam computes the leap multipliers for the given exponents,
// validating the hierarchy invariants. This is the work of the paper's
// `genparam ne np nr` command.
func ComputeGenparam(ne, np, nr uint) (GenparamData, error) {
	p, err := NewParams(ne, np, nr)
	if err != nil {
		return GenparamData{}, err
	}
	ae, ap, ar := p.Multipliers()
	return GenparamData{Params: p, ExpMult: ae, ProcMult: ap, RealizeMult: ar}, nil
}

// WriteGenparam writes the parameter file into dir.
func WriteGenparam(dir string, d GenparamData) error {
	if err := d.Params.Validate(); err != nil {
		return err
	}
	path := filepath.Join(dir, GenparamFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("rng: writing genparam file: %w", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# PARMONC parallel RNG leap parameters\n")
	fmt.Fprintf(w, "ne %d\n", d.Params.ExperimentLeapLog2)
	fmt.Fprintf(w, "np %d\n", d.Params.ProcessorLeapLog2)
	fmt.Fprintf(w, "nr %d\n", d.Params.RealizationLeapLog2)
	fmt.Fprintf(w, "Ane %s\n", d.ExpMult.Hex())
	fmt.Fprintf(w, "Anp %s\n", d.ProcMult.Hex())
	fmt.Fprintf(w, "Anr %s\n", d.RealizeMult.Hex())
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadGenparam reads the parameter file from dir and verifies that the
// stored multipliers match the stored exponents (guarding against a
// corrupted or hand-edited file that would silently produce overlapping
// streams).
func ReadGenparam(dir string) (GenparamData, error) {
	path := filepath.Join(dir, GenparamFile)
	f, err := os.Open(path)
	if err != nil {
		return GenparamData{}, err
	}
	defer f.Close()

	var d GenparamData
	fields := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return GenparamData{}, fmt.Errorf("rng: malformed line %q in %s", line, path)
		}
		fields[key] = strings.TrimSpace(val)
	}
	if err := sc.Err(); err != nil {
		return GenparamData{}, err
	}
	exp := func(key string) (uint, error) {
		v, ok := fields[key]
		if !ok {
			return 0, fmt.Errorf("rng: missing field %q in %s", key, path)
		}
		n, err := strconv.ParseUint(v, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("rng: bad %s value %q: %w", key, v, err)
		}
		return uint(n), nil
	}
	mult := func(key string) (u128.Uint128, error) {
		v, ok := fields[key]
		if !ok {
			return u128.Zero, fmt.Errorf("rng: missing field %q in %s", key, path)
		}
		m, err := u128.ParseHex(v)
		if err != nil {
			return u128.Zero, fmt.Errorf("rng: bad %s value %q: %w", key, v, err)
		}
		return m, nil
	}
	ne, err := exp("ne")
	if err != nil {
		return GenparamData{}, err
	}
	np, err := exp("np")
	if err != nil {
		return GenparamData{}, err
	}
	nr, err := exp("nr")
	if err != nil {
		return GenparamData{}, err
	}
	d.Params, err = NewParams(ne, np, nr)
	if err != nil {
		return GenparamData{}, err
	}
	if d.ExpMult, err = mult("Ane"); err != nil {
		return GenparamData{}, err
	}
	if d.ProcMult, err = mult("Anp"); err != nil {
		return GenparamData{}, err
	}
	if d.RealizeMult, err = mult("Anr"); err != nil {
		return GenparamData{}, err
	}
	ae, ap, ar := d.Params.Multipliers()
	if !d.ExpMult.Eq(ae) || !d.ProcMult.Eq(ap) || !d.RealizeMult.Eq(ar) {
		return GenparamData{}, fmt.Errorf("rng: multipliers in %s do not match exponents (file corrupted or edited)", path)
	}
	return d, nil
}

// LoadParams returns the Params from dir's genparam file if one exists,
// or the defaults otherwise. This mirrors the paper's behaviour: "the
// PARMONC routines use the multipliers' values from this file instead of
// the default ones".
func LoadParams(dir string) (Params, error) {
	d, err := ReadGenparam(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return DefaultParams(), nil
		}
		return Params{}, err
	}
	return d.Params, nil
}
