package rng

import (
	"fmt"
	"testing"

	"parmonc/internal/u128"
)

// FuzzDiscardMatchesSequential pins the leap-frog skip against the
// ground truth: advancing a stream with Discard(n) must land on exactly
// the state that n sequential draws reach, for any coordinate in the
// hierarchy. This is the property that makes checkpoint/restore and
// draw-layout alignment trustworthy — an off-by-one in the O(log n)
// skip would silently correlate "independent" substreams.
func FuzzDiscardMatchesSequential(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint16(0))
	f.Add(uint64(0), uint64(0), uint64(0), uint16(1))
	f.Add(uint64(1), uint64(7), uint64(3), uint16(1000))
	f.Add(uint64(42), uint64(1023), uint64(999), uint16(4096))
	f.Add(uint64(999), uint64(1), uint64(0), uint16(65535))
	f.Fuzz(func(t *testing.T, e, p, r uint64, n16 uint16) {
		c := Coord{
			Experiment:  e % 1024,
			Processor:   p % 65536,
			Realization: r % 65536,
		}
		n := uint64(n16)
		skip, err := NewStream(DefaultParams(), c)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewStream(DefaultParams(), c)
		if err != nil {
			t.Fatal(err)
		}
		skip.Discard(n)
		for i := uint64(0); i < n; i++ {
			seq.Float64()
		}
		if !skip.State().Eq(seq.State()) {
			t.Fatalf("coord %+v: Discard(%d) state %v, sequential state %v",
				c, n, skip.State(), seq.State())
		}
		if skip.Drawn() != seq.Drawn() {
			t.Fatalf("coord %+v: Discard(%d) drawn %d, sequential drawn %d",
				c, n, skip.Drawn(), seq.Drawn())
		}
		// One more sequential draw must agree too: equal state must mean
		// equal future, not just an equal snapshot.
		if skip.Float64() != seq.Float64() {
			t.Fatalf("coord %+v: streams diverge after Discard(%d)", c, n)
		}
	})
}

// FuzzSubstreamWindowsDisjoint samples a window of draws from several
// neighboring (processor, realization) substreams and requires every
// visited generator state to be globally unique. Overlapping substreams
// would revisit a state (an LCG's future is a function of its state),
// so a collision here is exactly the correlated-streams disaster the
// leap-frog hierarchy exists to prevent.
func FuzzSubstreamWindowsDisjoint(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint16(64))
	f.Add(uint64(3), uint64(100), uint16(128))
	f.Add(uint64(7777), uint64(12345), uint16(256))
	f.Fuzz(func(t *testing.T, pBase, rBase uint64, w16 uint16) {
		pBase %= 1 << 20
		rBase %= 1 << 20
		window := uint64(w16)%512 + 1
		seen := make(map[u128.Uint128]string, 6*window)
		for dp := uint64(0); dp < 2; dp++ {
			for dr := uint64(0); dr < 3; dr++ {
				c := Coord{Processor: pBase + dp, Realization: rBase + dr}
				s, err := NewStream(DefaultParams(), c)
				if err != nil {
					t.Fatal(err)
				}
				for i := uint64(0); i < window; i++ {
					st := s.State()
					if prev, dup := seen[st]; dup {
						t.Fatalf("substream (p=%d,r=%d) draw %d revisits state of %s",
							c.Processor, c.Realization, i, prev)
					}
					seen[st] = fmt.Sprintf("(p=%d,r=%d) draw %d", c.Processor, c.Realization, i)
					s.Float64()
				}
			}
		}
	})
}
