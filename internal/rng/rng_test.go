package rng

import (
	"testing"

	"parmonc/internal/lcg"
	"parmonc/internal/u128"
)

func mustStream(t *testing.T, p Params, c Coord) *Stream {
	t.Helper()
	s, err := NewStream(p, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityDefaults(t *testing.T) {
	// Sec. 2.4: 2^125·2^-115 = 2^10 ≈ 10^3 experiments; 2^115·2^-98 =
	// 2^17 ≈ 10^5 processors; 2^98·2^-43 = 2^55 ≈ 10^16 realizations.
	p := DefaultParams()
	if got, want := p.MaxExperiments(), u128.One.Lsh(10); !got.Eq(want) {
		t.Errorf("MaxExperiments = %s, want 2^10", got)
	}
	if got, want := p.MaxProcessors(), u128.One.Lsh(17); !got.Eq(want) {
		t.Errorf("MaxProcessors = %s, want 2^17", got)
	}
	if got, want := p.MaxRealizations(), u128.One.Lsh(55); !got.Eq(want) {
		t.Errorf("MaxRealizations = %s, want 2^55", got)
	}
	if got, want := p.RealizationBudget(), u128.One.Lsh(43); !got.Eq(want) {
		t.Errorf("RealizationBudget = %s, want 2^43", got)
	}
}

func TestCapacityProductFillsHalfPeriod(t *testing.T) {
	// experiments × processors × realizations × budget = 2^125: the
	// hierarchy tiles the usable half-period exactly.
	p := DefaultParams()
	total := uint(p.MaxExperiments().BitLen()-1) +
		uint(p.MaxProcessors().BitLen()-1) +
		uint(p.MaxRealizations().BitLen()-1) +
		uint(p.RealizationBudget().BitLen()-1)
	if total != lcg.UsableLog2 {
		t.Fatalf("hierarchy covers 2^%d, want 2^%d", total, lcg.UsableLog2)
	}
}

func TestNewParamsRejectsBadNesting(t *testing.T) {
	cases := []struct{ ne, np, nr uint }{
		{98, 115, 43},  // np > ne
		{115, 43, 98},  // nr > np
		{126, 98, 43},  // ne > usable half-period
		{115, 98, 120}, // nr > np (and ne)
	}
	for _, c := range cases {
		if _, err := NewParams(c.ne, c.np, c.nr); err == nil {
			t.Errorf("NewParams(%d,%d,%d): expected error", c.ne, c.np, c.nr)
		}
	}
}

func TestNewParamsAcceptsEqualLeaps(t *testing.T) {
	// Degenerate but legal: all levels the same size.
	if _, err := NewParams(40, 40, 40); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMatchesManualLeap(t *testing.T) {
	// A stream at Coord{e,p,r} must equal the base generator advanced by
	// e·2^115 + p·2^98 + r·2^43.
	p := DefaultParams()
	c := Coord{Experiment: 3, Processor: 5, Realization: 7}
	s := mustStream(t, p, c)

	g := lcg.New()
	off := u128.From64(3).Lsh(115).Add(u128.From64(5).Lsh(98)).Add(u128.From64(7).Lsh(43))
	g.SkipAhead(off)
	if !s.State().Eq(g.State()) {
		t.Fatalf("stream state %s, manual leap %s", s.State(), g.State())
	}
	// And produce identical numbers afterwards.
	for i := 0; i < 100; i++ {
		if a, b := s.Float64(), g.Float64(); a != b {
			t.Fatalf("diverged at draw %d: %g vs %g", i, a, b)
		}
	}
}

func TestZeroCoordIsGeneralSequence(t *testing.T) {
	s := mustStream(t, DefaultParams(), Coord{})
	g := lcg.New()
	for i := 0; i < 100; i++ {
		if a, b := s.Float64(), g.Float64(); a != b {
			t.Fatalf("draw %d: %g vs %g", i, a, b)
		}
	}
}

func TestCheckCoordCapacity(t *testing.T) {
	p := DefaultParams()
	ok := []Coord{
		{},
		{Experiment: 1023},           // 2^10 - 1
		{Processor: 1<<17 - 1},       // max processor
		{Realization: 1<<55 - 1},     // max realization
		{1023, 1<<17 - 1, 1<<55 - 1}, // all at max simultaneously
	}
	for _, c := range ok {
		if err := p.CheckCoord(c); err != nil {
			t.Errorf("CheckCoord(%+v): unexpected error %v", c, err)
		}
	}
	bad := []Coord{
		{Experiment: 1 << 10},
		{Processor: 1 << 17},
		{Realization: 1 << 55},
	}
	for _, c := range bad {
		if err := p.CheckCoord(c); err == nil {
			t.Errorf("CheckCoord(%+v): expected error", c)
		}
	}
}

func TestDistinctCoordsDistinctStates(t *testing.T) {
	p := DefaultParams()
	coords := []Coord{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, 0},
		{0, 1, 1}, {1, 1, 0}, {1, 0, 1}, {1, 1, 1},
		{2, 3, 4}, {7, 100, 12345},
	}
	seen := map[string]Coord{}
	for _, c := range coords {
		s := mustStream(t, p, c)
		h := s.State().Hex()
		if prev, dup := seen[h]; dup {
			t.Fatalf("coords %+v and %+v share state %s", prev, c, h)
		}
		seen[h] = c
	}
}

func TestSubsequenceNestingIdentity(t *testing.T) {
	// Processor p's subsequence within experiment e starts exactly where
	// the experiment subsequence, advanced by p·n_p, starts: the
	// hierarchy is genuinely nested, not merely disjoint.
	p := DefaultParams()
	s := mustStream(t, p, Coord{Experiment: 2, Processor: 9})

	g := lcg.New()
	g.SkipAhead(u128.From64(2).Lsh(p.ExperimentLeapLog2))
	g.SkipAhead(u128.From64(9).Lsh(p.ProcessorLeapLog2))
	if !s.State().Eq(g.State()) {
		t.Fatal("processor subsequence is not nested inside experiment subsequence")
	}
}

func TestNextRealizationAdvances(t *testing.T) {
	p := DefaultParams()
	s := mustStream(t, p, Coord{Experiment: 1, Processor: 2})

	// Draw a few numbers, then move to the next realization.
	for i := 0; i < 10; i++ {
		s.Float64()
	}
	if err := s.NextRealization(); err != nil {
		t.Fatal(err)
	}
	if got := s.Coord(); got.Realization != 1 {
		t.Fatalf("Realization = %d, want 1", got.Realization)
	}
	if got := s.Drawn(); got != 0 {
		t.Fatalf("Drawn = %d after NextRealization, want 0", got)
	}
	// Must match a freshly-built stream at the same coordinate.
	fresh := mustStream(t, p, Coord{Experiment: 1, Processor: 2, Realization: 1})
	if !s.State().Eq(fresh.State()) {
		t.Fatal("NextRealization landed at wrong state")
	}
}

func TestNextRealizationIndependentOfDrawCount(t *testing.T) {
	// Realization k+1's stream does not depend on how many numbers
	// realization k consumed — the core PARMONC reproducibility property.
	p := DefaultParams()
	a := mustStream(t, p, Coord{})
	b := mustStream(t, p, Coord{})
	for i := 0; i < 5; i++ {
		a.Float64()
	}
	for i := 0; i < 5000; i++ {
		b.Float64()
	}
	if err := a.NextRealization(); err != nil {
		t.Fatal(err)
	}
	if err := b.NextRealization(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d differs: %g vs %g", i, x, y)
		}
	}
}

func TestSeekRealization(t *testing.T) {
	p := DefaultParams()
	s := mustStream(t, p, Coord{Processor: 4})
	if err := s.SeekRealization(42); err != nil {
		t.Fatal(err)
	}
	fresh := mustStream(t, p, Coord{Processor: 4, Realization: 42})
	if !s.State().Eq(fresh.State()) {
		t.Fatal("SeekRealization landed at wrong state")
	}
	if err := s.SeekRealization(1 << 55); err == nil {
		t.Fatal("SeekRealization past capacity: expected error")
	}
}

func TestNextRealizationCapacityExhaustion(t *testing.T) {
	// With tiny custom leaps, exhausting realizations must error rather
	// than silently overlap the next processor's subsequence.
	p, err := NewParams(20, 10, 5) // 2^5 realizations per processor... 2^(10-5)=32
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(p, Coord{Realization: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.NextRealization(); err != nil { // -> 31, still fine
		t.Fatal(err)
	}
	if err := s.NextRealization(); err == nil { // -> 32, out of range
		t.Fatal("expected capacity error at realization 32")
	}
}

func TestUint64Draws(t *testing.T) {
	p := DefaultParams()
	s := mustStream(t, p, Coord{})
	v := s.Uint64()
	g := lcg.New()
	if want := g.Next().Hi; v != want {
		t.Fatalf("Uint64 = %x, want %x", v, want)
	}
	if s.Drawn() != 1 {
		t.Fatalf("Drawn = %d, want 1", s.Drawn())
	}
}

func TestStreamsOnDifferentProcessorsDiffer(t *testing.T) {
	// First few numbers from 8 different processor streams must all be
	// distinct (coarse independence smoke test; the rngtest package does
	// the rigorous testing).
	p := DefaultParams()
	seen := map[float64]int{}
	for proc := uint64(0); proc < 8; proc++ {
		s := mustStream(t, p, Coord{Processor: proc})
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %g repeats between processors %d and %d", v, prev, proc)
			}
			seen[v] = int(proc)
		}
	}
}

func BenchmarkNewStream(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		s, err := NewStream(p, Coord{Experiment: 1, Processor: 3, Realization: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

func BenchmarkNextRealization(b *testing.B) {
	s, err := NewStream(DefaultParams(), Coord{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := s.NextRealization(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamFloat64(b *testing.B) {
	s, err := NewStream(DefaultParams(), Coord{})
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Float64()
	}
	_ = sink
}

func TestDiscardMatchesDrawing(t *testing.T) {
	p := DefaultParams()
	a := mustStream(t, p, Coord{Processor: 3})
	b := mustStream(t, p, Coord{Processor: 3})
	for i := 0; i < 1234; i++ {
		a.Float64()
	}
	b.Discard(1234)
	if a.Drawn() != b.Drawn() {
		t.Fatalf("drawn counts differ: %d vs %d", a.Drawn(), b.Drawn())
	}
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("streams diverge after discard at %d", i)
		}
	}
}

func TestDiscardZeroNoOp(t *testing.T) {
	s := mustStream(t, DefaultParams(), Coord{})
	before := s.State()
	s.Discard(0)
	if !s.State().Eq(before) {
		t.Fatal("Discard(0) moved the stream")
	}
}
