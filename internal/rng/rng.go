// Package rng implements the PARMONC parallel random number generator:
// the three-level hierarchy of embedded subsequences of the base 128-bit
// congruential generator (Marchenko, PaCT 2011, Sec. 2.4).
//
// The general sequence {α_k} is divided by "leaps" into nested
// subsequences assigned to
//
//   - stochastic experiments (leap length n_e, default 2^115),
//   - processors within an experiment (leap length n_p, default 2^98),
//   - realizations within a processor (leap length n_r, default 2^43),
//
// so that
//
//	general sequence ⊃ "experiments" ⊃ "processors" ⊃ "realizations".
//
// With the defaults, the first half of the period (2^125 numbers)
// accommodates 2^10 ≈ 10^3 experiments × 2^17 ≈ 10^5 processors ×
// 2^55 ≈ 10^16 realizations, each realization drawing up to 2^43 ≈ 10^13
// base random numbers — "practically infinite" scaling in the paper's
// words.
//
// A Stream is positioned at the start of one realization subsequence; the
// user's realization routine draws base random numbers from it exactly as
// a sequential program would call the paper's rnd128().
package rng

import (
	"fmt"

	"parmonc/internal/lcg"
	"parmonc/internal/u128"
)

// Default leap exponents (Sec. 2.4 of the paper).
const (
	DefaultExperimentLeapLog2  = 115 // n_e = 2^115 ≈ 10^34
	DefaultProcessorLeapLog2   = 98  // n_p = 2^98 ≈ 10^29
	DefaultRealizationLeapLog2 = 43  // n_r = 2^43 ≈ 10^13
)

// Params holds the leap exponents of the substream hierarchy. The leaps
// are n_e = 2^ExperimentLeapLog2, n_p = 2^ProcessorLeapLog2 and
// n_r = 2^RealizationLeapLog2. A zero Params is not valid; use
// DefaultParams or NewParams.
type Params struct {
	ExperimentLeapLog2  uint
	ProcessorLeapLog2   uint
	RealizationLeapLog2 uint
}

// DefaultParams returns the paper's default leap exponents
// (n_e, n_p, n_r) = (2^115, 2^98, 2^43).
func DefaultParams() Params {
	return Params{
		ExperimentLeapLog2:  DefaultExperimentLeapLog2,
		ProcessorLeapLog2:   DefaultProcessorLeapLog2,
		RealizationLeapLog2: DefaultRealizationLeapLog2,
	}
}

// NewParams validates and returns custom leap exponents, enforcing the
// paper's nesting requirement n_r ≤ n_p ≤ n_e and that the experiment
// leap fits in the usable half-period.
func NewParams(ne, np, nr uint) (Params, error) {
	p := Params{ExperimentLeapLog2: ne, ProcessorLeapLog2: np, RealizationLeapLog2: nr}
	return p, p.Validate()
}

// Validate checks the nesting invariants of the hierarchy.
func (p Params) Validate() error {
	if p.RealizationLeapLog2 > p.ProcessorLeapLog2 {
		return fmt.Errorf("rng: realization leap 2^%d exceeds processor leap 2^%d",
			p.RealizationLeapLog2, p.ProcessorLeapLog2)
	}
	if p.ProcessorLeapLog2 > p.ExperimentLeapLog2 {
		return fmt.Errorf("rng: processor leap 2^%d exceeds experiment leap 2^%d",
			p.ProcessorLeapLog2, p.ExperimentLeapLog2)
	}
	if p.ExperimentLeapLog2 > lcg.UsableLog2 {
		return fmt.Errorf("rng: experiment leap 2^%d exceeds usable half-period 2^%d",
			p.ExperimentLeapLog2, lcg.UsableLog2)
	}
	return nil
}

// MaxExperiments returns the number of stochastic experiments the usable
// half-period accommodates: 2^(125 - ne).
func (p Params) MaxExperiments() u128.Uint128 {
	return u128.One.Lsh(lcg.UsableLog2 - p.ExperimentLeapLog2)
}

// MaxProcessors returns the number of processor subsequences per
// experiment: 2^(ne - np).
func (p Params) MaxProcessors() u128.Uint128 {
	return u128.One.Lsh(p.ExperimentLeapLog2 - p.ProcessorLeapLog2)
}

// MaxRealizations returns the number of realization subsequences per
// processor: 2^(np - nr).
func (p Params) MaxRealizations() u128.Uint128 {
	return u128.One.Lsh(p.ProcessorLeapLog2 - p.RealizationLeapLog2)
}

// RealizationBudget returns the number of base random numbers available
// to a single realization: n_r = 2^nr.
func (p Params) RealizationBudget() u128.Uint128 {
	return u128.One.Lsh(p.RealizationLeapLog2)
}

// Multipliers returns the three leap multipliers Â(n_e), Â(n_p), Â(n_r)
// for the default base multiplier A. These are the values the paper's
// genparam command computes and stores.
func (p Params) Multipliers() (ae, ap, ar u128.Uint128) {
	return lcg.LeapMultiplierPow2(p.ExperimentLeapLog2),
		lcg.LeapMultiplierPow2(p.ProcessorLeapLog2),
		lcg.LeapMultiplierPow2(p.RealizationLeapLog2)
}

// Coord identifies one realization subsequence within the hierarchy:
// experiment seqnum (the user-chosen argument of parmoncf/parmoncc),
// processor index (the parallel branch number), and realization index on
// that processor.
type Coord struct {
	Experiment  uint64
	Processor   uint64
	Realization uint64
}

// offset returns the absolute position of the subsequence start within
// the general sequence: e·n_e + p·n_p + r·n_r.
func (p Params) offset(c Coord) u128.Uint128 {
	e := u128.From64(c.Experiment).Lsh(p.ExperimentLeapLog2)
	pr := u128.From64(c.Processor).Lsh(p.ProcessorLeapLog2)
	r := u128.From64(c.Realization).Lsh(p.RealizationLeapLog2)
	return e.Add(pr).Add(r)
}

// CheckCoord verifies that a coordinate lies within the capacity of the
// hierarchy, so that distinct coordinates yield non-overlapping
// subsequences.
func (p Params) CheckCoord(c Coord) error {
	if max := p.MaxExperiments(); u128.From64(c.Experiment).Cmp(max) >= 0 {
		return fmt.Errorf("rng: experiment %d exceeds capacity %s", c.Experiment, max)
	}
	if max := p.MaxProcessors(); u128.From64(c.Processor).Cmp(max) >= 0 {
		return fmt.Errorf("rng: processor %d exceeds capacity %s", c.Processor, max)
	}
	if max := p.MaxRealizations(); u128.From64(c.Realization).Cmp(max) >= 0 {
		return fmt.Errorf("rng: realization %d exceeds capacity %s", c.Realization, max)
	}
	return nil
}

// Stream is a positioned view into the general sequence of base random
// numbers: the realization subsequence at a given Coord. It implements
// the Source interface consumed by the distribution and simulation
// packages.
//
// A Stream is not safe for concurrent use. The PARMONC design never
// shares one: each realization gets its own.
type Stream struct {
	gen    *lcg.Gen
	params Params
	coord  Coord
	drawn  uint64 // base random numbers drawn so far
}

// NewStream returns a Stream positioned at the start of the realization
// subsequence identified by c. It returns an error if c exceeds the
// hierarchy capacity.
func NewStream(p Params, c Coord) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CheckCoord(c); err != nil {
		return nil, err
	}
	g := lcg.New()
	g.SkipAhead(p.offset(c))
	return &Stream{gen: g, params: p, coord: c}, nil
}

// Coord returns the stream's position in the hierarchy.
func (s *Stream) Coord() Coord { return s.coord }

// Params returns the hierarchy parameters the stream was built with.
func (s *Stream) Params() Params { return s.params }

// Drawn returns the number of base random numbers drawn from the stream.
func (s *Stream) Drawn() uint64 { return s.drawn }

// Float64 returns the next base random number α ∈ (0, 1). This is the
// library's rnd128(): the user's realization routine calls it exactly as
// the sequential code would.
func (s *Stream) Float64() float64 {
	s.drawn++
	return s.gen.Float64()
}

// Uint64 returns 64 uniform random bits (the high half of the next
// generator state). It draws one base random number.
func (s *Stream) Uint64() uint64 {
	s.drawn++
	return s.gen.Next().Hi
}

// NextRealization repositions the stream at the start of the next
// realization subsequence on the same processor. The PARMONC driver calls
// this before each realization so that every realization consumes an
// independent subsequence regardless of how many numbers the previous one
// drew.
func (s *Stream) NextRealization() error {
	c := s.coord
	c.Realization++
	if err := s.params.CheckCoord(c); err != nil {
		return err
	}
	// Jump relative to the current realization start, not the current
	// position: re-derive the state from the origin offset. Deriving
	// fresh is O(log offset) and keeps the arithmetic exact.
	g := lcg.New()
	g.SkipAhead(s.params.offset(c))
	s.gen = g
	s.coord = c
	s.drawn = 0
	return nil
}

// SeekRealization repositions the stream at the start of realization r on
// the same processor.
func (s *Stream) SeekRealization(r uint64) error {
	c := s.coord
	c.Realization = r
	if err := s.params.CheckCoord(c); err != nil {
		return err
	}
	g := lcg.New()
	g.SkipAhead(s.params.offset(c))
	s.gen = g
	s.coord = c
	s.drawn = 0
	return nil
}

// State exposes the underlying generator state (for checkpointing).
func (s *Stream) State() u128.Uint128 { return s.gen.State() }

// Source is the minimal interface the simulation substrates consume: a
// supplier of base random numbers uniform on (0, 1). *Stream implements
// it, as does *lcg.Gen via an adapter, and test doubles can too.
type Source interface {
	Float64() float64
}

var _ Source = (*Stream)(nil)

// Discard advances the stream by n base random numbers in O(log n)
// time using the leap multiplier — useful for realization routines
// that must align with a fixed draw layout without generating the
// intermediate numbers. The discarded draws count against Drawn.
func (s *Stream) Discard(n uint64) {
	s.gen.SkipAhead(u128.From64(n))
	s.drawn += n
}
