package rng

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parmonc/internal/lcg"
)

func TestComputeGenparamDefaults(t *testing.T) {
	d, err := ComputeGenparam(115, 98, 43)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ExpMult.Eq(lcg.LeapMultiplierPow2(115)) {
		t.Error("experiment multiplier mismatch")
	}
	if !d.ProcMult.Eq(lcg.LeapMultiplierPow2(98)) {
		t.Error("processor multiplier mismatch")
	}
	if !d.RealizeMult.Eq(lcg.LeapMultiplierPow2(43)) {
		t.Error("realization multiplier mismatch")
	}
}

func TestComputeGenparamRejectsBad(t *testing.T) {
	if _, err := ComputeGenparam(43, 98, 115); err == nil {
		t.Fatal("expected nesting error")
	}
}

func TestGenparamRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := ComputeGenparam(100, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGenparam(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGenparam(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != d.Params {
		t.Fatalf("params: got %+v, want %+v", got.Params, d.Params)
	}
	if !got.ExpMult.Eq(d.ExpMult) || !got.ProcMult.Eq(d.ProcMult) || !got.RealizeMult.Eq(d.RealizeMult) {
		t.Fatal("multipliers lost in round trip")
	}
}

func TestReadGenparamDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := ComputeGenparam(100, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGenparam(dir, d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, GenparamFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the stored exponent but not the multiplier.
	tampered := strings.Replace(string(raw), "ne 100", "ne 99", 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGenparam(dir); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestReadGenparamMalformed(t *testing.T) {
	cases := map[string]string{
		"missing field": "ne 100\nnp 80\n",
		"bad exponent":  "ne abc\nnp 80\nnr 40\nAne 0\nAnp 0\nAnr 0\n",
		"bad hex":       "ne 100\nnp 80\nnr 40\nAne zz\nAnp 0\nAnr 0\n",
		"no separator":  "ne100\n",
	}
	for name, content := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, GenparamFile), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadGenparam(dir); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadParamsFallsBackToDefaults(t *testing.T) {
	p, err := LoadParams(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if p != DefaultParams() {
		t.Fatalf("got %+v, want defaults", p)
	}
}

func TestLoadParamsUsesFile(t *testing.T) {
	dir := t.TempDir()
	d, err := ComputeGenparam(90, 70, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGenparam(dir, d); err != nil {
		t.Fatal(err)
	}
	p, err := LoadParams(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p != d.Params {
		t.Fatalf("got %+v, want %+v", p, d.Params)
	}
}

func FuzzReadGenparam(f *testing.F) {
	good, err := ComputeGenparam(100, 80, 40)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	if err := WriteGenparam(dir, good); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, GenparamFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(raw))
	f.Add("")
	f.Add("ne 10\nnp 5\nnr 2\nAne 0\nAnp 0\nAnr 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, GenparamFile), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := ReadGenparam(dir)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent: valid
		// nesting and multipliers that match the exponents.
		if err := d.Params.Validate(); err != nil {
			t.Fatalf("accepted invalid params: %v", err)
		}
		ae, ap, ar := d.Params.Multipliers()
		if !d.ExpMult.Eq(ae) || !d.ProcMult.Eq(ap) || !d.RealizeMult.Eq(ar) {
			t.Fatal("accepted multipliers inconsistent with exponents")
		}
	})
}
