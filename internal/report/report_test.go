package report

import (
	"strings"
	"testing"
	"time"

	"parmonc/internal/stat"
)

func sampleReport(t *testing.T, nrow, ncol int) stat.Report {
	t.Helper()
	a := stat.New(nrow, ncol)
	row := make([]float64, nrow*ncol)
	for i := range row {
		row[i] = float64(i + 1)
	}
	if err := a.AddTimed(row, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := range row {
		row[i] = float64(i + 2)
	}
	if err := a.AddTimed(row, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return a.Report(3)
}

func TestSummaryContents(t *testing.T) {
	var sb strings.Builder
	if err := Summary(&sb, sampleReport(t, 2, 2)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2×2", "total sample volume", "2\n", "max relative error", "1ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTableAllRows(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, sampleReport(t, 3, 2), 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "\n"); got != 4 { // header + 3 rows
		t.Fatalf("line count %d:\n%s", got, out)
	}
	if strings.Contains(out, "more rows") {
		t.Fatal("unexpected truncation notice")
	}
}

func TestTableTruncation(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, sampleReport(t, 10, 1), 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "... 6 more rows") {
		t.Fatalf("missing truncation notice:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	r1 := sampleReport(t, 1, 1)
	r2 := sampleReport(t, 1, 1)
	comb := sampleReport(t, 1, 1)
	var sb strings.Builder
	if err := Compare(&sb, []stat.Report{r1, r2}, comb, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "experiment 0") || !strings.Contains(out, "pooled") {
		t.Fatalf("compare output incomplete:\n%s", out)
	}
}
