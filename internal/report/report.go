// Package report renders the library's statistical reports as text —
// the human-readable counterpart of the func.dat / func_ci.dat /
// func_log.dat files, shared by the command-line tools.
package report

import (
	"fmt"
	"io"
	"time"

	"parmonc/internal/stat"
)

// Summary writes the one-screen overview a run prints on completion:
// volumes, error bounds, timing.
func Summary(w io.Writer, rep stat.Report) error {
	lines := []struct {
		label string
		value string
	}{
		{"matrix", fmt.Sprintf("%d×%d", rep.Nrow, rep.Ncol)},
		{"total sample volume", fmt.Sprintf("%d", rep.N)},
		{"confidence coefficient", fmt.Sprintf("%g", rep.Gamma)},
		{"mean time per realization", rep.MeanSimTime.Round(time.Nanosecond).String()},
		{"max absolute error", fmt.Sprintf("%g", rep.MaxAbsErr)},
		{"max relative error", fmt.Sprintf("%g%%", rep.MaxRelErr)},
		{"max variance", fmt.Sprintf("%g", rep.MaxVar)},
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%-28s %s\n", l.label, l.value); err != nil {
			return err
		}
	}
	return nil
}

// Table writes the means with their absolute errors as an aligned
// table, at most maxRows rows (0 = all); a truncation notice follows if
// rows were omitted.
func Table(w io.Writer, rep stat.Report, maxRows int) error {
	rows := rep.Nrow
	truncated := 0
	if maxRows > 0 && rows > maxRows {
		truncated = rows - maxRows
		rows = maxRows
	}
	if _, err := fmt.Fprintf(w, "%6s", "row"); err != nil {
		return err
	}
	for j := 0; j < rep.Ncol; j++ {
		if _, err := fmt.Fprintf(w, "  %24s", fmt.Sprintf("col %d (mean ± 3σ/√L)", j+1)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if _, err := fmt.Fprintf(w, "%6d", i+1); err != nil {
			return err
		}
		for j := 0; j < rep.Ncol; j++ {
			cell := fmt.Sprintf("%.6g ± %.3g", rep.MeanAt(i, j), rep.AbsErrAt(i, j))
			if _, err := fmt.Fprintf(w, "  %24s", cell); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if truncated > 0 {
		if _, err := fmt.Fprintf(w, "... %d more rows in func.dat\n", truncated); err != nil {
			return err
		}
	}
	return nil
}

// Compare writes per-experiment means side by side with the pooled
// estimate for entry (i, j) — the multi-experiment validation view.
func Compare(w io.Writer, reports []stat.Report, combined stat.Report, i, j int) error {
	if _, err := fmt.Fprintf(w, "entry (%d,%d):\n", i+1, j+1); err != nil {
		return err
	}
	for k, rep := range reports {
		if _, err := fmt.Fprintf(w, "  experiment %-3d  %.6g ± %.3g  (L = %d)\n",
			k, rep.MeanAt(i, j), rep.AbsErrAt(i, j), rep.N); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  pooled          %.6g ± %.3g  (L = %d)\n",
		combined.MeanAt(i, j), combined.AbsErrAt(i, j), combined.N)
	return err
}
