package parmonc_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildCLI compiles a command into a temp dir once per test binary.
var cliCache = map[string]string{}

func buildCLI(t *testing.T, pkg string) string {
	t.Helper()
	if p, ok := cliCache[pkg]; ok {
		return p
	}
	dir, err := os.MkdirTemp("", "parmonc-cli")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	cliCache[pkg] = bin
	return bin
}

func runCLI(t *testing.T, dir string, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIRunJSON(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()
	out, err := runCLI(t, dir, bin, "run", "-workload", "pi", "-maxsv", "50000",
		"-perpass", "5ms", "-peraver", "10ms", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var res struct {
		N      int64     `json:"total_sample_volume"`
		Mean   []float64 `json:"mean"`
		AbsErr []float64 `json:"abs_err"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.N != 50000 {
		t.Fatalf("N = %d", res.N)
	}
	if math.Abs(res.Mean[0]-math.Pi/4) > res.AbsErr[0]*4/3 {
		t.Fatalf("mean %g outside bound of π/4", res.Mean[0])
	}
	// Files written into the working directory.
	if _, err := os.Stat(filepath.Join(dir, "parmonc_data", "results", "func.dat")); err != nil {
		t.Fatal("func.dat missing")
	}
}

func TestCLIRunStats(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()
	out, err := runCLI(t, dir, bin, "run", "-workload", "pi", "-maxsv", "20000",
		"-perpass", "5ms", "-peraver", "10ms", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "collector statistics:") {
		t.Fatalf("no statistics block in output:\n%s", out)
	}
	// The counters must be observable and non-zero for a completed run.
	for _, key := range []string{"pushes", "merges", "saves"} {
		m := regexp.MustCompile(`(?m)^` + key + `\s+(\d+)$`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("counter %q missing from stats output:\n%s", key, out)
		}
		if n, _ := strconv.Atoi(m[1]); n == 0 {
			t.Fatalf("counter %q is zero:\n%s", key, out)
		}
	}
	if !strings.Contains(out, "rejected_snapshots       0") {
		t.Fatalf("expected zero rejected snapshots:\n%s", out)
	}

	// The same counters ride along in the JSON output.
	out, err = runCLI(t, dir, bin, "run", "-workload", "pi", "-maxsv", "20000",
		"-perpass", "5ms", "-peraver", "10ms", "-seqnum", "1", "-json", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var res struct {
		Stats *struct {
			Pushes int64 `json:"pushes"`
			Merges int64 `json:"merges"`
			Saves  int64 `json:"saves"`
		} `json:"collector_stats"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Stats == nil || res.Stats.Pushes == 0 || res.Stats.Merges == 0 || res.Stats.Saves == 0 {
		t.Fatalf("collector_stats missing or zero: %+v\n%s", res.Stats, out)
	}
}

func TestCLIRunResumeManaverFlow(t *testing.T) {
	parmoncBin := buildCLI(t, "cmd/parmonc")
	manaverBin := buildCLI(t, "cmd/manaver")
	dir := t.TempDir()

	if out, err := runCLI(t, dir, parmoncBin, "run", "-workload", "pi", "-maxsv", "20000",
		"-perpass", "5ms", "-peraver", "10ms"); err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}
	if out, err := runCLI(t, dir, parmoncBin, "run", "-workload", "pi", "-maxsv", "20000",
		"-res", "-seqnum", "1", "-perpass", "5ms", "-peraver", "10ms"); err != nil {
		t.Fatalf("resume: %v\n%s", err, out)
	}
	out, err := runCLI(t, dir, manaverBin)
	if err != nil {
		t.Fatalf("manaver: %v\n%s", err, out)
	}
	if !strings.Contains(out, "total sample volume") || !strings.Contains(out, "40000") {
		t.Fatalf("manaver output:\n%s", out)
	}
}

func TestCLIResumeSameSeqnumFails(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()
	if out, err := runCLI(t, dir, bin, "run", "-workload", "pi", "-maxsv", "1000",
		"-perpass", "5ms", "-peraver", "10ms"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err := runCLI(t, dir, bin, "run", "-workload", "pi", "-maxsv", "1000",
		"-res", "-perpass", "5ms", "-peraver", "10ms")
	if err == nil {
		t.Fatalf("same-seqnum resume accepted:\n%s", out)
	}
	if !strings.Contains(out, "different experiments subsequence") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}

func TestCLIGenparamRoundTrip(t *testing.T) {
	genparamBin := buildCLI(t, "cmd/genparam")
	parmoncBin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()
	if out, err := runCLI(t, dir, genparamBin, "100", "80", "40"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "parmonc_genparam.dat")); err != nil {
		t.Fatal("genparam file missing")
	}
	// The run picks the custom exponents up (visible in func_log.dat).
	if out, err := runCLI(t, dir, parmoncBin, "run", "-workload", "pi", "-maxsv", "1000",
		"-perpass", "5ms", "-peraver", "10ms"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	logRaw, err := os.ReadFile(filepath.Join(dir, "parmonc_data", "results", "func_log.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logRaw), "ne=100 np=80 nr=40") {
		t.Fatalf("custom leaps not used:\n%s", logRaw)
	}
}

func TestCLIGenparamRejectsBadArgs(t *testing.T) {
	bin := buildCLI(t, "cmd/genparam")
	dir := t.TempDir()
	if out, err := runCLI(t, dir, bin, "40", "80", "100"); err == nil {
		t.Fatalf("inverted exponents accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, bin, "1", "2"); err == nil {
		t.Fatalf("missing argument accepted:\n%s", out)
	}
}

func TestCLIListWorkloads(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	out, err := runCLI(t, t.TempDir(), bin, "list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, w := range []string{"pi", "diffusion", "transport", "dsmc", "chem", "option", "dirichlet", "density"} {
		if !strings.Contains(out, w) {
			t.Errorf("workload %s missing from list:\n%s", w, out)
		}
	}
}

// TestCLIListJSONGolden pins the machine-readable registry byte for
// byte. The golden file holds names, descriptions, schemas, default
// dimensions and the parameter fingerprints at defaults — if this test
// fails, either a workload changed identity (bump its schema version
// and regenerate) or the listing format drifted. Regenerate with:
//
//	go run ./cmd/parmonc list -json > testdata/list_golden.json
func TestCLIListJSONGolden(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	out, err := runCLI(t, t.TempDir(), bin, "list", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	golden, err := os.ReadFile("testdata/list_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("list -json drifted from testdata/list_golden.json:\n%s", out)
	}
	// And it is valid JSON naming every workload.
	var entries []struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(entries) != 13 {
		t.Fatalf("%d workloads listed, want 13", len(entries))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Fingerprint, e.Name+"@v") {
			t.Fatalf("entry %s has malformed fingerprint %q", e.Name, e.Fingerprint)
		}
	}
}

// TestCLISetChangesResultsDeterministically: the same -set produces
// bit-identical results across runs, and a different -set produces
// different results — parameterization is real and reproducible.
func TestCLISetChangesResultsDeterministically(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	run := func(sets ...string) (mean float64, scenario string) {
		t.Helper()
		args := []string{"run", "-workload", "mm1", "-set", "warmup=20", "-set", "batch=20",
			"-maxsv", "400", "-workers", "1", "-perpass", "5ms", "-peraver", "10ms", "-json"}
		for _, s := range sets {
			args = append(args, "-set", s)
		}
		out, err := runCLI(t, t.TempDir(), bin, args...)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		var res struct {
			Mean     []float64 `json:"mean"`
			Scenario string    `json:"scenario"`
			Workload string    `json:"workload"`
		}
		if err := json.Unmarshal([]byte(out), &res); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, out)
		}
		if res.Workload != "mm1" {
			t.Fatalf("workload %q in JSON output", res.Workload)
		}
		return res.Mean[0], res.Scenario
	}

	base1, scen1 := run()
	base2, scen2 := run()
	if base1 != base2 || scen1 != scen2 {
		t.Fatalf("identical runs diverge: %v/%v, %q/%q", base1, base2, scen1, scen2)
	}
	loaded, scen3 := run("lambda=0.8")
	if loaded == base1 {
		t.Fatalf("-set lambda=0.8 did not change the result (mean %v)", loaded)
	}
	if scen3 == scen1 || !strings.Contains(scen3, `"lambda":0.8`) {
		t.Fatalf("scenario %q does not record the override", scen3)
	}
	// Heavier load ⇒ longer M/M/1 waits; direction is physics, not luck.
	if loaded <= base1 {
		t.Fatalf("mean wait at λ=0.8 (%v) not above λ=0.6 (%v)", loaded, base1)
	}
}

// TestCLIScenarioSpecRoundTrip: a run parameterized by -set records a
// canonical scenario JSON in parmonc_exp.dat, and re-running from that
// spec via -scenario reproduces the result exactly.
func TestCLIScenarioSpecRoundTrip(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()
	out, err := runCLI(t, dir, bin, "run", "-workload", "density", "-set", "bins=5", "-set", "rate=2",
		"-maxsv", "2000", "-workers", "1", "-perpass", "5ms", "-peraver", "10ms", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var res struct {
		Mean     []float64 `json:"mean"`
		Scenario string    `json:"scenario"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(res.Mean) != 5 {
		t.Fatalf("bins=5 produced %d columns", len(res.Mean))
	}

	// The experiment log carries the same canonical spec.
	expRaw, err := os.ReadFile(filepath.Join(dir, "parmonc_data", "parmonc_exp.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(expRaw), "scenario="+res.Scenario) {
		t.Fatalf("parmonc_exp.dat does not record scenario %q:\n%s", res.Scenario, expRaw)
	}
	if !strings.Contains(string(expRaw), "workload=density@v1/") {
		t.Fatalf("parmonc_exp.dat does not record the fingerprint:\n%s", expRaw)
	}

	// Re-run from the recorded spec file: bit-identical result.
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(res.Scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := runCLI(t, t.TempDir(), bin, "run", "-scenario", specPath,
		"-maxsv", "2000", "-workers", "1", "-perpass", "5ms", "-peraver", "10ms", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	var res2 struct {
		Mean     []float64 `json:"mean"`
		Scenario string    `json:"scenario"`
	}
	if err := json.Unmarshal([]byte(out2), &res2); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out2)
	}
	if res2.Scenario != res.Scenario {
		t.Fatalf("scenario not canonical across round trip: %q vs %q", res2.Scenario, res.Scenario)
	}
	for i := range res.Mean {
		if res.Mean[i] != res2.Mean[i] {
			t.Fatalf("Mean[%d] %v != %v after -scenario round trip", i, res.Mean[i], res2.Mean[i])
		}
	}

	// A conflicting -workload alongside -scenario is refused.
	if out, err := runCLI(t, t.TempDir(), bin, "run", "-scenario", specPath, "-workload", "pi",
		"-maxsv", "10"); err == nil || !strings.Contains(out, "but -workload says") {
		t.Fatalf("conflicting -workload accepted: %v\n%s", err, out)
	}
}

// TestCLICoordWorkerParamMismatch is the end-to-end regression test for
// the registration hole: a TCP worker running the same workload with a
// different -set is rejected at registration with an error naming the
// parameter, and never contributes samples.
func TestCLICoordWorkerParamMismatch(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	coord := exec.Command(bin, "coord", "-workload", "mm1",
		"-set", "warmup=20", "-set", "batch=20", "-maxsv", "2000",
		"-addr", addr, "-peraver", "10ms", "-pass-every", "200")
	coord.Dir = dir
	var coordOut strings.Builder
	coord.Stdout = &coordOut
	coord.Stderr = &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	time.Sleep(300 * time.Millisecond)

	// Mismatched parameterization: rejected, names the parameter.
	bad := exec.Command(bin, "worker", "-addr", addr, "-workload", "mm1",
		"-set", "warmup=20", "-set", "batch=20", "-set", "lambda=0.9")
	bad.Dir = dir
	badOut, err := bad.CombinedOutput()
	if err == nil {
		t.Fatalf("mismatched worker exited zero:\n%s", badOut)
	}
	if !strings.Contains(string(badOut), `workload "mm1": parameter lambda mismatch: worker has 0.9, the job has 0.6`) {
		t.Fatalf("rejection does not pin the parameter:\n%s", badOut)
	}

	// Matching parameterization: completes the job.
	good := exec.Command(bin, "worker", "-addr", addr, "-workload", "mm1",
		"-set", "warmup=20", "-set", "batch=20")
	good.Dir = dir
	if out, err := good.CombinedOutput(); err != nil {
		t.Fatalf("matching worker: %v\n%s", err, out)
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coordOut.String())
	}
	if !strings.Contains(coordOut.String(), "job finished") {
		t.Fatalf("coordinator output:\n%s", coordOut.String())
	}
}

func TestCLIUnknownWorkload(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	out, err := runCLI(t, t.TempDir(), bin, "run", "-workload", "nope", "-maxsv", "10")
	if err == nil {
		t.Fatalf("unknown workload accepted:\n%s", out)
	}
	if !strings.Contains(out, "available") {
		t.Fatalf("error does not list workloads:\n%s", out)
	}
}

func TestCLIFig2Capacities(t *testing.T) {
	bin := buildCLI(t, "cmd/fig2")
	out, err := runCLI(t, t.TempDir(), bin, "-capacities")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"2^126", "131072", "1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("capacities output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFig2PanelA(t *testing.T) {
	bin := buildCLI(t, "cmd/fig2")
	out, err := runCLI(t, t.TempDir(), bin, "-panel", "a")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "M=1") || !strings.Contains(out, "M=8") || !strings.Contains(out, "speedup") {
		t.Fatalf("panel a output:\n%s", out)
	}
}

func TestCLICoordWorkerDistributedJob(t *testing.T) {
	bin := buildCLI(t, "cmd/parmonc")
	dir := t.TempDir()

	// Reserve a port for the coordinator.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	coord := exec.Command(bin, "coord", "-workload", "pi", "-maxsv", "30000",
		"-addr", addr, "-peraver", "10ms", "-pass-every", "500")
	coord.Dir = dir
	var coordOut strings.Builder
	coord.Stdout = &coordOut
	coord.Stderr = &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// Give the listener a moment, then attach two workers.
	time.Sleep(300 * time.Millisecond)
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			w := exec.Command(bin, "worker", "-workload", "pi", "-addr", addr)
			w.Dir = dir
			out, err := w.CombinedOutput()
			if err != nil {
				err = fmt.Errorf("%v\n%s", err, out)
			}
			workerErr <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coordOut.String())
	}
	if !strings.Contains(coordOut.String(), "job finished") {
		t.Fatalf("coordinator output:\n%s", coordOut.String())
	}
	// Results on disk: π/4 within a loose bound.
	raw, err := os.ReadFile(filepath.Join(dir, "parmonc_data", "results", "func.dat"))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(raw)), "%g", &mean); err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-math.Pi/4) > 0.02 {
		t.Fatalf("distributed mean %g", mean)
	}
}

func TestCLIRngtestPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("rngtest CLI is slow")
	}
	bin := buildCLI(t, "cmd/rngtest")
	out, err := runCLI(t, t.TempDir(), bin, "-n", "100000", "-cross", "2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "all tests passed") {
		t.Fatalf("rngtest output:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("rngtest reported failures:\n%s", out)
	}
}

func TestCLIFig2Ablation(t *testing.T) {
	bin := buildCLI(t, "cmd/fig2")
	out, err := runCLI(t, t.TempDir(), bin, "-ablation")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "pass-every") || !strings.Contains(out, "15330") {
		t.Fatalf("ablation output:\n%s", out)
	}
}

// TestCLIGenparamGoldenMultipliers pins genparam's printed leap
// multipliers for two fixed exponent sets — the hex values are the
// library's Â(n) = A^n mod 2^128, and any change here means the RNG
// hierarchy is producing different substreams than every prior run.
func TestCLIGenparamGoldenMultipliers(t *testing.T) {
	bin := buildCLI(t, "cmd/genparam")
	cases := []struct {
		args   []string
		golden []string
	}{
		{[]string{"115", "98", "43"}, []string{ // the paper's defaults
			"Â(n_e) = 77600000000000000000000000000001",
			"Â(n_p) = b424bbb0000000000000000000000001",
			"Â(n_r) = 402b44410f5535684977600000000001",
			"capacity: 1024 experiments × 131072 processors × 36028797018963968 realizations",
		}},
		{[]string{"20", "10", "5"}, []string{
			"Â(n_e) = be6112e74cc17fe3433f9892eec00001",
			"Â(n_p) = 88279b6b877c6c6e1fa26649713bb001",
			"Â(n_r) = fd0b0d82cf7502b6bb7543c5fe88fd81",
			"capacity: 40564819207303340847894502572032 experiments × 1024 processors × 32 realizations",
		}},
	}
	for _, tc := range cases {
		out, err := runCLI(t, t.TempDir(), bin, tc.args...)
		if err != nil {
			t.Fatalf("genparam %v: %v\n%s", tc.args, err, out)
		}
		for _, want := range tc.golden {
			if !strings.Contains(out, want) {
				t.Errorf("genparam %v output missing %q:\n%s", tc.args, want, out)
			}
		}
	}
}

// TestCLIGenparamDirFlag: -dir places the parameter file elsewhere and
// the run directory stays untouched.
func TestCLIGenparamDirFlag(t *testing.T) {
	bin := buildCLI(t, "cmd/genparam")
	runDir, paramDir := t.TempDir(), t.TempDir()
	out, err := runCLI(t, runDir, bin, "-dir", paramDir, "100", "80", "40")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(paramDir, "parmonc_genparam.dat")); err != nil {
		t.Fatalf("parameter file not in -dir target: %v", err)
	}
	if _, err := os.Stat(filepath.Join(runDir, "parmonc_genparam.dat")); !os.IsNotExist(err) {
		t.Fatalf("parameter file leaked into the working directory (stat err %v)", err)
	}
	if !strings.Contains(out, paramDir) {
		t.Fatalf("output does not name the target directory:\n%s", out)
	}
}

// TestCLIManaverEmptyDirFails: without a simulation to average, manaver
// must explain itself on stderr and exit nonzero rather than write
// anything.
func TestCLIManaverEmptyDirFails(t *testing.T) {
	bin := buildCLI(t, "cmd/manaver")
	dir := t.TempDir()
	out, err := runCLI(t, dir, bin)
	if err == nil {
		t.Fatalf("manaver succeeded in an empty directory:\n%s", out)
	}
	if !strings.Contains(out, "manaver:") {
		t.Fatalf("error output missing the manaver: prefix:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed manaver left files behind: %v", entries)
	}
}

// TestCLIManaverDirFlag: manaver run from an unrelated directory finds
// the simulation through -dir, and its recovered totals match what the
// run reported.
func TestCLIManaverDirFlag(t *testing.T) {
	parmoncBin := buildCLI(t, "cmd/parmonc")
	manaverBin := buildCLI(t, "cmd/manaver")
	simDir, elsewhere := t.TempDir(), t.TempDir()

	if out, err := runCLI(t, simDir, parmoncBin, "run", "-workload", "pi", "-maxsv", "20000",
		"-perpass", "5ms", "-peraver", "10ms"); err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	out, err := runCLI(t, elsewhere, manaverBin, "-dir", simDir)
	if err != nil {
		t.Fatalf("manaver -dir: %v\n%s", err, out)
	}
	if !strings.Contains(out, "averaged results rewritten") ||
		!strings.Contains(out, "total sample volume") {
		t.Fatalf("manaver output:\n%s", out)
	}
	if !regexp.MustCompile(`total sample volume:?\s+2\d{4}`).MatchString(out) {
		t.Fatalf("recovered sample volume not ≈20000:\n%s", out)
	}
}
