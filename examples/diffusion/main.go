// Diffusion: the paper's Sec. 4 performance-test workload as a user
// program.
//
// We estimate E y₁(t_i), E y₂(t_i) for the 2-D SDE system
//
//	dy(t) = C dt + D dw(t),  y(0) = (5, 10),  C = (0.5, 1),
//
// by simulating trajectories with the generalized Euler method (formula
// (9) of the paper) and averaging them with PARMONC. The trajectory
// simulator is the registered "diffusion" workload (internal/sde's
// PaperRealization), so this program is a thin invocation: it runs the
// definition at its schema defaults and checks the answer against the
// exact solution E y(t) = y₀ + C·t, with C read back from the system's
// own drift function.
//
// The paper integrates to t = 100 with mesh 10⁻⁶ (≈ 7.7 s per
// realization on 2011 hardware); the defaults integrate to t = 10 with
// mesh 10⁻³ so the demo finishes in seconds. Pass -res to resume a
// previous run with a fresh seqnum, as in the paper's example main
// program.
//
//	go run ./examples/diffusion [-res] [-seqnum N] [-maxsv L]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/sde"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

func main() {
	res := flag.Bool("res", false, "resume the previous simulation (use a new -seqnum)")
	seqnum := flag.Uint64("seqnum", 0, "experiments subsequence number")
	maxsv := flag.Int64("maxsv", 2000, "maximal sample volume")
	flag.Parse()

	def, err := workload.Lookup("diffusion")
	if err != nil {
		log.Fatal(err)
	}
	id, err := def.Identity(nil) // defaults: h=1e-3, tend=10, nout=100
	if err != nil {
		log.Fatal(err)
	}
	factory, err := def.Factory(workload.Values(id.Params))
	if err != nil {
		log.Fatal(err)
	}

	result, err := parmonc.RunFactory(context.Background(), parmonc.Config{
		Nrow:       id.Nrow,
		Ncol:       id.Ncol,
		MaxSamples: *maxsv,
		Resume:     *res,
		SeqNum:     *seqnum,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, factory)
	if err != nil {
		log.Fatal(err)
	}

	// The exact mean is y₀ + C·t; recover y₀ and the constant drift C
	// from the paper system itself rather than restating them.
	sys := sde.PaperSystem()
	c := make([]float64, sys.Dim)
	sys.Drift(0, sys.Y0, c)
	tEnd := id.Params["tend"]
	nOut := id.Nrow

	rep := result.Report
	fmt.Printf("L = %d trajectories in %v (mean %s per realization)\n",
		rep.N, result.Elapsed.Round(time.Millisecond), rep.MeanSimTime)
	fmt.Printf("%8s  %22s  %22s\n", "t", "E y1 (exact)", "E y2 (exact)")
	worst := 0.0
	for _, i := range []int{9, 24, 49, 74, 99} {
		ti := tEnd * float64(i+1) / float64(nOut)
		e1, e2 := sys.Y0[0]+c[0]*ti, sys.Y0[1]+c[1]*ti
		g1, g2 := rep.MeanAt(i, 0), rep.MeanAt(i, 1)
		fmt.Printf("%8.2f  %9.4f±%-7.4f (%5.2f)  %9.4f±%-7.4f (%5.2f)\n",
			ti, g1, rep.AbsErrAt(i, 0), e1, g2, rep.AbsErrAt(i, 1), e2)
		worst = math.Max(worst, math.Max(math.Abs(g1-e1), math.Abs(g2-e2)))
	}
	fmt.Printf("max deviation from exact mean at printed times: %.4f (3σ bound ≈ %.4f)\n",
		worst, rep.MaxAbsErr)
	fmt.Println("results saved in ./parmonc_data/results (func.dat, func_ci.dat, func_log.dat)")
}
