// Diffusion: the paper's Sec. 4 performance-test workload as a user
// program.
//
// We estimate E y₁(t_i), E y₂(t_i) for the 2-D SDE system
//
//	dy(t) = C dt + D dw(t),  y(0) = (5, 10),  C = (0.5, 1),
//
// by simulating trajectories with the generalized Euler method (formula
// (9) of the paper) and averaging them with PARMONC. This mirrors the
// paper's difftraj example: the realization routine below is exactly
// what a PARMONC user writes, including taking its normal variates from
// the library stream via the dist package. The exact solution
// E y(t) = y₀ + C·t lets the program check its own answer.
//
// The paper integrates to t = 100 with mesh 10⁻⁶ (≈ 7.7 s per
// realization on 2011 hardware); we integrate to t = 10 with mesh 10⁻³
// so the demo finishes in seconds. Pass -res to resume a previous run
// with a fresh seqnum, as in the paper's example main program.
//
//	go run ./examples/diffusion [-res] [-seqnum N] [-maxsv L]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	nOut = 100  // output times t_i = i·tEnd/nOut
	dim  = 2    // system dimension
	tEnd = 10.0 // integration horizon
	h    = 1e-3 // Euler mesh
)

var (
	y0 = [dim]float64{5, 10}
	c  = [dim]float64{0.5, 1}
	d  = [dim][dim]float64{{1.0, 0.2}, {0.2, 1.0}}
)

// difftraj simulates one approximate diffusion trajectory and fills the
// nOut×2 realization matrix with its values at the output times.
func difftraj(src *parmonc.Stream, out []float64) error {
	y := y0
	sqrtH := math.Sqrt(h)
	stepsPerOut := int(tEnd / float64(nOut) / h)
	var normal dist.Normal
	for i := 0; i < nOut; i++ {
		for s := 0; s < stepsPerOut; s++ {
			var xi [dim]float64
			for k := 0; k < dim; k++ {
				xi[k] = normal.Sample(src)
			}
			for k := 0; k < dim; k++ {
				y[k] += h*c[k] + sqrtH*(d[k][0]*xi[0]+d[k][1]*xi[1])
			}
		}
		out[i*dim+0] = y[0]
		out[i*dim+1] = y[1]
	}
	return nil
}

func main() {
	res := flag.Bool("res", false, "resume the previous simulation (use a new -seqnum)")
	seqnum := flag.Uint64("seqnum", 0, "experiments subsequence number")
	maxsv := flag.Int64("maxsv", 2000, "maximal sample volume")
	flag.Parse()

	result, err := parmonc.RunFactory(context.Background(), parmonc.Config{
		Nrow:       nOut,
		Ncol:       dim,
		MaxSamples: *maxsv,
		Resume:     *res,
		SeqNum:     *seqnum,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, func(int) (parmonc.Realization, error) {
		// Each worker gets its own copy of difftraj; the closure itself
		// is stateless here, but the factory form matches how the MPI
		// library runs a copy per rank.
		return difftraj, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := result.Report
	fmt.Printf("L = %d trajectories in %v (mean %s per realization)\n",
		rep.N, result.Elapsed.Round(time.Millisecond), rep.MeanSimTime)
	fmt.Printf("%8s  %22s  %22s\n", "t", "E y1 (exact)", "E y2 (exact)")
	worst := 0.0
	for _, i := range []int{9, 24, 49, 74, 99} {
		ti := tEnd * float64(i+1) / nOut
		e1, e2 := y0[0]+c[0]*ti, y0[1]+c[1]*ti
		g1, g2 := rep.MeanAt(i, 0), rep.MeanAt(i, 1)
		fmt.Printf("%8.2f  %9.4f±%-7.4f (%5.2f)  %9.4f±%-7.4f (%5.2f)\n",
			ti, g1, rep.AbsErrAt(i, 0), e1, g2, rep.AbsErrAt(i, 1), e2)
		worst = math.Max(worst, math.Max(math.Abs(g1-e1), math.Abs(g2-e2)))
	}
	fmt.Printf("max deviation from exact mean at printed times: %.4f (3σ bound ≈ %.4f)\n",
		worst, rep.MaxAbsErr)
	fmt.Println("results saved in ./parmonc_data/results (func.dat, func_ci.dat, func_log.dat)")
}
