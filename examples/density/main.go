// Density: estimate a probability density with per-bin confidence
// bounds — the PARMONC "matrix realization" idiom of Sec. 2.1 where each
// realization is a row of bin indicators, so the automatic sample-mean
// and error-matrix machinery produces a histogram with honest 3σ error
// bars in one run.
//
// The variate is the waiting time of an M/M/1 queue customer in steady
// state (λ = 0.6, μ = 1). Its exact distribution is a mixed atom at zero
// plus an exponential tail: P(W = 0) = 1 − ρ and, for w > 0, density
// ρ(μ−λ)e^{−(μ−λ)w}. The program prints the estimated and exact tail
// densities side by side.
//
//	go run ./examples/density
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	lambda = 0.6
	mu     = 1.0
	rho    = lambda / mu
	warmup = 4000

	bins  = 12
	binLo = 0.0
	binHi = 6.0
)

// waitSample draws one steady-state waiting time via the Lindley
// recursion from an empty queue through a long warmup.
func waitSample(src parmonc.Source) float64 {
	w := 0.0
	for k := 0; k < warmup; k++ {
		w += dist.Exponential(src, mu) - dist.Exponential(src, lambda)
		if w < 0 {
			w = 0
		}
	}
	return w
}

func main() {
	width := (binHi - binLo) / bins
	realization := func(src *parmonc.Stream, out []float64) error {
		v := waitSample(src)
		idx := int((v - binLo) / width)
		if idx >= 0 && idx < bins {
			out[idx] = 1 / width
		}
		return nil
	}

	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: bins,
		MaxSamples: 20000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, realization)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	fmt.Printf("M/M/1 waiting-time density, ρ = %.1f, L = %d customers (one per realization)\n", rho, rep.N)
	fmt.Printf("exact: atom P(W=0) = %.2f, tail density ρ(μ−λ)e^{−(μ−λ)w}\n\n", 1-rho)
	fmt.Printf("%10s  %22s  %10s  %s\n", "w", "estimated density", "exact", "")
	for j := 0; j < bins; j++ {
		c := binLo + (float64(j)+0.5)*width
		got := rep.MeanAt(0, j)
		// Exact bin-averaged density including the atom in bin 0.
		a, b := binLo+float64(j)*width, binLo+float64(j+1)*width
		exact := rho * (math.Exp(-(mu-lambda)*a) - math.Exp(-(mu-lambda)*b)) / width
		if j == 0 {
			exact += (1 - rho) / width
		}
		bar := strings.Repeat("█", int(got*40+0.5))
		fmt.Printf("%10.2f  %9.4f±%-10.4f  %10.4f  %s\n", c, got, rep.AbsErrAt(0, j), exact, bar)
	}
}
