// Density: estimate a probability density with per-bin confidence
// bounds — the PARMONC "matrix realization" idiom of Sec. 2.1 where each
// realization is a row of bin indicators, so the automatic sample-mean
// and error-matrix machinery produces a histogram with honest 3σ error
// bars in one run.
//
// The variate is the waiting time of an M/M/1 queue customer in steady
// state (λ = 0.6, μ = 1), drawn by the queueing scenario package's
// Lindley recursion and binned by the histogram scenario package — the
// same building blocks behind the registered "mm1" and "density"
// workloads, composed here into a custom realization. The exact
// distribution is a mixed atom at zero plus an exponential tail:
// P(W = 0) = 1 − ρ and, for w > 0, density ρ(μ−λ)e^{−(μ−λ)w}. The
// program prints the estimated and exact tail densities side by side.
//
//	go run ./examples/density
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"parmonc"
	"parmonc/internal/histogram"
	"parmonc/internal/queueing"
)

func main() {
	q := queueing.MM1{Lambda: 0.6, Mu: 1, Warmup: 4000}
	if err := q.Validate(); err != nil {
		log.Fatal(err)
	}
	spec := histogram.Spec{Bins: 12, A: 0, B: 6}
	realize, err := spec.Realization(q.SteadyWait)
	if err != nil {
		log.Fatal(err)
	}

	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: spec.Bins,
		MaxSamples: 20000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, func(src *parmonc.Stream, out []float64) error {
		return realize(src, out)
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	rho := q.Rho()
	width := spec.Width()
	fmt.Printf("M/M/1 waiting-time density, ρ = %.1f, L = %d customers (one per realization)\n", rho, rep.N)
	fmt.Printf("exact: atom P(W=0) = %.2f, tail density ρ(μ−λ)e^{−(μ−λ)w}\n\n", 1-rho)
	fmt.Printf("%10s  %22s  %10s  %s\n", "w", "estimated density", "exact", "")
	for j, c := range spec.Centers() {
		got := rep.MeanAt(0, j)
		// Exact bin-averaged density including the atom in bin 0.
		a, b := spec.A+float64(j)*width, spec.A+float64(j+1)*width
		exact := rho * (math.Exp(-(q.Mu-q.Lambda)*a) - math.Exp(-(q.Mu-q.Lambda)*b)) / width
		if j == 0 {
			exact += (1 - rho) / width
		}
		bar := strings.Repeat("█", int(got*40+0.5))
		fmt.Printf("%10.2f  %9.4f±%-10.4f  %10.4f  %s\n", c, got, rep.AbsErrAt(0, j), exact, bar)
	}
}
