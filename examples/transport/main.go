// Transport: 1-D slab shielding with PARMONC — the application domain
// Monte Carlo began with and the first the paper lists.
//
// A particle beam hits a homogeneous slab; each history flies
// exponential free paths, scatters isotropically with probability c and
// is absorbed otherwise. The realization routine returns the indicator
// triple (transmitted, reflected, absorbed); PARMONC averages histories
// into the three probabilities with confidence bounds, for a sweep of
// scattering ratios.
//
//	go run ./examples/transport
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	thickness = 2.0 // slab width, mean free paths (ΣT = 1)
	sigmaT    = 1.0
	mu0       = 1.0 // normal incidence
)

// history simulates one particle through a slab with scattering ratio c
// and sets exactly one of out[0..2] (transmitted, reflected, absorbed).
func history(src *parmonc.Stream, c float64, out []float64) error {
	x, mu := 0.0, mu0
	for coll := 0; coll < 10000; coll++ {
		x += mu * dist.Exponential(src, sigmaT)
		switch {
		case x >= thickness:
			out[0] = 1
			return nil
		case x < 0:
			out[1] = 1
			return nil
		}
		if !dist.Bernoulli(src, c) {
			out[2] = 1
			return nil
		}
		if mu = dist.Uniform(src, -1, 1); mu == 0 {
			mu = 1e-12
		}
	}
	return fmt.Errorf("history exceeded collision cap")
}

func main() {
	ratios := []float64{0, 0.3, 0.6, 0.9, 0.99}

	// One PARMONC run per scattering ratio, each under its own
	// experiments subsequence so all runs use disjoint random numbers.
	fmt.Printf("%6s  %22s  %22s  %22s\n", "c", "P(transmit)", "P(reflect)", "P(absorb)")
	for i, c := range ratios {
		c := c
		res, err := parmonc.Run(context.Background(), parmonc.Config{
			Nrow:       1,
			Ncol:       3,
			MaxSamples: 200_000,
			SeqNum:     uint64(i),
			WorkDir:    fmt.Sprintf("%s/run-c%02.0f", ".", c*100),
			PassPeriod: 100 * time.Millisecond,
			AverPeriod: 200 * time.Millisecond,
		}, func(src *parmonc.Stream, out []float64) error {
			return history(src, c, out)
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%6.2f  %9.5f±%-10.5f  %9.5f±%-10.5f  %9.5f±%-10.5f\n", c,
			rep.MeanAt(0, 0), rep.AbsErrAt(0, 0),
			rep.MeanAt(0, 1), rep.AbsErrAt(0, 1),
			rep.MeanAt(0, 2), rep.AbsErrAt(0, 2))
		if c == 0 {
			exact := math.Exp(-sigmaT * thickness / mu0)
			fmt.Printf("        pure absorber check: exact P(transmit) = e^-2 = %.5f\n", exact)
		}
	}
	fmt.Println("note how scattering first feeds reflection, then at c→1 pushes particles through.")
}
