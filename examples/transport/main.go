// Transport: 1-D slab shielding with PARMONC — the application domain
// Monte Carlo began with and the first the paper lists.
//
// A particle beam hits a homogeneous slab; each history flies
// exponential free paths, scatters isotropically with probability
// c = σ_s/σ_t and is absorbed otherwise. The history simulator is the
// registered "transport" workload (internal/transport), so this program
// is a thin invocation: one run per scattering ratio, overriding only
// the sigma_s parameter of the definition's schema. PARMONC averages
// histories into the three probabilities (transmitted, reflected,
// absorbed) with confidence bounds.
//
//	go run ./examples/transport
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

func main() {
	def, err := workload.Lookup("transport")
	if err != nil {
		log.Fatal(err)
	}
	ratios := []float64{0, 0.3, 0.6, 0.9, 0.99}

	// One PARMONC run per scattering ratio, each under its own
	// experiments subsequence so all runs use disjoint random numbers.
	fmt.Printf("%6s  %22s  %22s  %22s\n", "c", "P(transmit)", "P(reflect)", "P(absorb)")
	for i, c := range ratios {
		// Defaults: thickness=2, sigma_t=1, mu0=1 — so sigma_s = c.
		id, err := def.Identity(workload.Values{"sigma_s": c})
		if err != nil {
			log.Fatal(err)
		}
		factory, err := def.Factory(workload.Values(id.Params))
		if err != nil {
			log.Fatal(err)
		}
		res, err := parmonc.RunFactory(context.Background(), parmonc.Config{
			Nrow:       id.Nrow,
			Ncol:       id.Ncol,
			MaxSamples: 200_000,
			SeqNum:     uint64(i),
			WorkDir:    fmt.Sprintf("%s/run-c%02.0f", ".", c*100),
			PassPeriod: 100 * time.Millisecond,
			AverPeriod: 200 * time.Millisecond,
		}, factory)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%6.2f  %9.5f±%-10.5f  %9.5f±%-10.5f  %9.5f±%-10.5f\n", c,
			rep.MeanAt(0, 0), rep.AbsErrAt(0, 0),
			rep.MeanAt(0, 1), rep.AbsErrAt(0, 1),
			rep.MeanAt(0, 2), rep.AbsErrAt(0, 2))
		if c == 0 {
			exact := math.Exp(-id.Params["sigma_t"] * id.Params["thickness"] / id.Params["mu0"])
			fmt.Printf("        pure absorber check: exact P(transmit) = e^-2 = %.5f\n", exact)
		}
	}
	fmt.Println("note how scattering first feeds reflection, then at c→1 pushes particles through.")
}
