// Finance: Monte Carlo option pricing with PARMONC — the financial
// mathematics application the paper lists in Sec. 2.1.
//
// Under the risk-neutral measure the asset follows geometric Brownian
// motion, so a European option's price is the discounted expected
// payoff: exactly the E ζ the library estimates. The option parameters
// come from the registered "option" workload's schema defaults; the
// realization composes the scenario package's European kernel (what
// `parmonc run -workload option` executes) with its Asian kernel into a
// 1×3 matrix (call payoff, put payoff, Asian call payoff). The European
// legs are verifiable against the Black–Scholes closed form from the
// same package, and put–call parity gives a second independent check.
//
//	go run ./examples/finance
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/finance"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

const months = 12 // Asian monitoring dates

func main() {
	def, err := workload.Lookup("option")
	if err != nil {
		log.Fatal(err)
	}
	v, err := def.Schema.Resolve(nil) // s0=100, strike=105, rate=0.05, sigma=0.2, t=1
	if err != nil {
		log.Fatal(err)
	}
	o := finance.Option{
		S0:     v.Float("s0"),
		Strike: v.Float("strike"),
		Rate:   v.Float("rate"),
		Sigma:  v.Float("sigma"),
		T:      v.Float("t"),
	}
	euro, err := o.EuropeanRealization()
	if err != nil {
		log.Fatal(err)
	}
	asian, err := o.AsianRealization(months)
	if err != nil {
		log.Fatal(err)
	}

	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: finance.NPayoffs + 1,
		MaxSamples: 500_000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, func(src *parmonc.Stream, out []float64) error {
		if err := euro(src, out[:finance.NPayoffs]); err != nil {
			return err
		}
		return asian(src, out[finance.NPayoffs:])
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	bsCall, bsPut := o.BlackScholesCall(), o.BlackScholesPut()
	fmt.Printf("European option, S0=%.0f K=%.0f r=%.0f%% σ=%.0f%% T=%gy, L = %d paths\n",
		o.S0, o.Strike, o.Rate*100, o.Sigma*100, o.T, rep.N)
	fmt.Printf("  MC call   %8.4f ± %.4f   Black–Scholes %8.4f\n", rep.MeanAt(0, 0), rep.AbsErrAt(0, 0), bsCall)
	fmt.Printf("  MC put    %8.4f ± %.4f   Black–Scholes %8.4f\n", rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), bsPut)
	parityMC := rep.MeanAt(0, 0) - rep.MeanAt(0, 1)
	parityExact := o.S0 - o.Strike*math.Exp(-o.Rate*o.T)
	fmt.Printf("  put–call parity: MC %8.4f vs exact %8.4f\n", parityMC, parityExact)
	fmt.Printf("  MC Asian  %8.4f ± %.4f   (no closed form; must lie below the European call)\n",
		rep.MeanAt(0, 2), rep.AbsErrAt(0, 2))
	if rep.MeanAt(0, 2) < rep.MeanAt(0, 0) {
		fmt.Println("  Asian < European ✓ (averaging damps volatility)")
	}
}
