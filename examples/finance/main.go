// Finance: Monte Carlo option pricing with PARMONC — the financial
// mathematics application the paper lists in Sec. 2.1.
//
// Under the risk-neutral measure the asset follows geometric Brownian
// motion, so a European option's price is the discounted expected
// payoff: exactly the E ζ the library estimates. The realization is a
// 1×3 matrix (call payoff, put payoff, Asian call payoff); the European
// legs are verifiable against the Black–Scholes closed form, computed
// inline below, and put–call parity gives a second independent check.
//
//	go run ./examples/finance
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	s0     = 100.0 // spot
	strike = 105.0
	rate   = 0.05
	sigma  = 0.20
	tMat   = 1.0 // maturity, years
	months = 12  // Asian monitoring dates
)

// payoffs simulates one risk-neutral path and fills
// [call, put, asian call].
func payoffs(src *parmonc.Stream, out []float64) error {
	disc := math.Exp(-rate * tMat)

	// Terminal price for the European legs: one exact GBM step.
	z := dist.StdNormal(src)
	sT := s0 * math.Exp((rate-sigma*sigma/2)*tMat+sigma*math.Sqrt(tMat)*z)
	if sT > strike {
		out[0] = disc * (sT - strike)
	} else {
		out[1] = disc * (strike - sT)
	}

	// Asian leg: monthly monitoring on an independent path.
	dt := tMat / months
	s := s0
	var sum float64
	for k := 0; k < months; k++ {
		s *= math.Exp((rate-sigma*sigma/2)*dt + sigma*math.Sqrt(dt)*dist.StdNormal(src))
		sum += s
	}
	if avg := sum / months; avg > strike {
		out[2] = disc * (avg - strike)
	}
	return nil
}

// blackScholes returns the exact European call and put prices.
func blackScholes() (call, put float64) {
	volT := sigma * math.Sqrt(tMat)
	d1 := (math.Log(s0/strike) + (rate+sigma*sigma/2)*tMat) / volT
	d2 := d1 - volT
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	call = s0*phi(d1) - strike*math.Exp(-rate*tMat)*phi(d2)
	put = strike*math.Exp(-rate*tMat)*phi(-d2) - s0*phi(-d1)
	return call, put
}

func main() {
	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: 3,
		MaxSamples: 500_000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, payoffs)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	bsCall, bsPut := blackScholes()
	fmt.Printf("European option, S0=%.0f K=%.0f r=%.0f%% σ=%.0f%% T=%gy, L = %d paths\n",
		s0, strike, rate*100, sigma*100, tMat, rep.N)
	fmt.Printf("  MC call   %8.4f ± %.4f   Black–Scholes %8.4f\n", rep.MeanAt(0, 0), rep.AbsErrAt(0, 0), bsCall)
	fmt.Printf("  MC put    %8.4f ± %.4f   Black–Scholes %8.4f\n", rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), bsPut)
	parityMC := rep.MeanAt(0, 0) - rep.MeanAt(0, 1)
	parityExact := s0 - strike*math.Exp(-rate*tMat)
	fmt.Printf("  put–call parity: MC %8.4f vs exact %8.4f\n", parityMC, parityExact)
	fmt.Printf("  MC Asian  %8.4f ± %.4f   (no closed form; must lie below the European call)\n",
		rep.MeanAt(0, 2), rep.AbsErrAt(0, 2))
	if rep.MeanAt(0, 2) < rep.MeanAt(0, 0) {
		fmt.Println("  Asian < European ✓ (averaging damps volatility)")
	}
}
