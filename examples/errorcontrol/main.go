// Errorcontrol: run until a target accuracy is reached, not a fixed
// sample count.
//
// The paper's reason for periodic (rather than end-only) data exchange
// is that "it is desirable to control the absolute and relative
// stochastic errors during the simulation". This program does exactly
// that: an unbounded run (MaxSamples = 0, the paper's "endless"
// simulation) carries the library's target-relative-error stop rule
// (parmonc.TargetRelErr, the 3σ̄·L^(−1/2) bound) in Config.Stop, and
// the run ends on its own once the maximal relative error of the
// estimate drops below the target. Config.OnSave only watches.
//
// The estimated quantity is the slab-transmission probability of the
// transport example (pure absorber, thickness 2: exact value e⁻²).
//
//	go run ./examples/errorcontrol
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"parmonc"
	"parmonc/dist"
)

const targetRelErr = 0.5 // percent

func main() {
	var saves atomic.Int64
	cfg := parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 0, // unbounded: accuracy decides when to stop
		PassPeriod: 20 * time.Millisecond,
		AverPeriod: 50 * time.Millisecond,
		Stop:       parmonc.TargetRelErr(targetRelErr, 1000),
		OnSave: func(p parmonc.Progress) {
			n := saves.Add(1)
			fmt.Printf("  save %2d: L = %8d  ρ_max = %6.3f%%  (target %.1f%%)\n",
				n, p.N, p.MaxRelErr, targetRelErr)
		},
	}

	res, err := parmonc.Run(context.Background(), cfg, func(src *parmonc.Stream, out []float64) error {
		if dist.Exponential(src, 1) >= 2 {
			out[0] = 1
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	exact := math.Exp(-2)
	fmt.Printf("\nstopped by accuracy control after %v, L = %d\n",
		res.Elapsed.Round(time.Millisecond), res.Report.N)
	fmt.Printf("P(transmit) = %.5f ± %.5f (rel %.3f%%), exact %.5f\n",
		res.Report.MeanAt(0, 0), res.Report.AbsErrAt(0, 0),
		res.Report.RelErrAt(0, 0), exact)
}
