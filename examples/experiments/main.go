// Experiments: validate a stochastic computation by repeating it on
// disjoint subsequences of the generator.
//
// The paper's Sec. 2.1 defines a "stochastic experiment" as computing
// the sample mean from one particular set of base random numbers; using
// a different, disjoint set yields an *independent* value of the same
// estimator. Running several experiments and checking that the
// independent estimates agree within their error bounds is the
// classical way to validate both the model and the generator. This
// program runs five independent experiments estimating E max(α₁, α₂, α₃)
// (exactly 3/4) and prints the comparison plus the pooled result.
//
//	go run ./examples/experiments
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
)

func main() {
	res, err := parmonc.RunExperiments(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 100_000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, []uint64{0, 1, 2, 3, 4}, func(int) (parmonc.Realization, error) {
		return func(src *parmonc.Stream, out []float64) error {
			m := src.Float64()
			if v := src.Float64(); v > m {
				m = v
			}
			if v := src.Float64(); v > m {
				m = v
			}
			out[0] = m
			return nil
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	const exact = 0.75 // E max of three uniforms = 3/4
	fmt.Println("five independent experiments estimating E max(α₁,α₂,α₃) = 3/4")
	agree := 0
	for i, rep := range res.Reports {
		m, e := rep.MeanAt(0, 0), rep.AbsErrAt(0, 0)
		ok := math.Abs(m-exact) < e
		if ok {
			agree++
		}
		fmt.Printf("  experiment %d (seqnum %d): %.5f ± %.5f  contains 3/4: %v\n",
			i, res.SeqNums[i], m, e, ok)
	}
	fmt.Printf("pooled over L = %d: %.5f ± %.5f\n",
		res.Combined.N, res.Combined.MeanAt(0, 0), res.Combined.AbsErrAt(0, 0))
	fmt.Printf("%d/5 experiments contain the exact value in their 3σ interval (expected ≈ 5)\n", agree)
}
