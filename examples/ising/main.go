// Ising: independent-replica Metropolis sampling of the 2-D Ising model
// with PARMONC — the statistical-physics domain the paper lists ("the
// Metropolis method, the Ising model").
//
// Each realization equilibrates a fresh 16×16 lattice at inverse
// temperature β and reports (energy per site, |magnetization|). Sweeping
// β across the exact critical point β_c = ln(1+√2)/2 ≈ 0.4407 shows the
// order parameter turning on — the independent-replica pattern is
// exactly how PARMONC parallelizes Markov chain Monte Carlo.
//
//	go run ./examples/ising
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	lat    = 16
	sweeps = 80
	warmup = 40
)

// replica runs one independent lattice at inverse temperature beta and
// writes the time-averaged observables.
func replica(src *parmonc.Stream, beta float64, out []float64) error {
	n := lat * lat
	spins := make([]int8, n)
	for i := range spins {
		if dist.Bernoulli(src, 0.5) {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	acc4, acc8 := math.Exp(-4*beta), math.Exp(-8*beta)
	nbrSum := func(i int) int {
		x, y := i%lat, i/lat
		return int(spins[y*lat+(x+1)%lat]) + int(spins[y*lat+(x-1+lat)%lat]) +
			int(spins[((y+1)%lat)*lat+x]) + int(spins[((y-1+lat)%lat)*lat+x])
	}
	var accE, accM float64
	measured := 0
	for sweep := 0; sweep < sweeps; sweep++ {
		for k := 0; k < n; k++ {
			i := dist.Choice(src, n)
			dE := 2 * int(spins[i]) * nbrSum(i)
			if dE <= 0 || (dE == 4 && dist.Bernoulli(src, acc4)) || (dE == 8 && dist.Bernoulli(src, acc8)) {
				spins[i] = -spins[i]
			}
		}
		if sweep < warmup {
			continue
		}
		var e, m int
		for i := 0; i < n; i++ {
			x, y := i%lat, i/lat
			e -= int(spins[i]) * (int(spins[y*lat+(x+1)%lat]) + int(spins[((y+1)%lat)*lat+x]))
			m += int(spins[i])
		}
		accE += float64(e) / float64(n)
		accM += math.Abs(float64(m)) / float64(n)
		measured++
	}
	out[0] = accE / float64(measured)
	out[1] = accM / float64(measured)
	return nil
}

func main() {
	betas := []float64{0.20, 0.35, 0.44, 0.50, 0.60}
	betaC := math.Log(1+math.Sqrt2) / 2

	fmt.Printf("2-D Ising, %d×%d lattice, independent replicas (β_c = %.4f)\n", lat, lat, betaC)
	fmt.Printf("%8s  %20s  %20s\n", "β", "E per site", "|m|")
	for i, beta := range betas {
		beta := beta
		res, err := parmonc.Run(context.Background(), parmonc.Config{
			Nrow:       1,
			Ncol:       2,
			MaxSamples: 200,
			SeqNum:     uint64(i),
			WorkDir:    fmt.Sprintf("run-beta%03.0f", beta*100),
			PassPeriod: 100 * time.Millisecond,
			AverPeriod: 200 * time.Millisecond,
		}, func(src *parmonc.Stream, out []float64) error {
			return replica(src, beta, out)
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		marker := ""
		if beta > betaC && rep.MeanAt(0, 1) > 0.5 {
			marker = "  ← ordered"
		}
		fmt.Printf("%8.2f  %9.4f±%-9.4f  %9.4f±%-9.4f%s\n", beta,
			rep.MeanAt(0, 0), rep.AbsErrAt(0, 0),
			rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), marker)
	}
}
