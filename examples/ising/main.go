// Ising: independent-replica Metropolis sampling of the 2-D Ising model
// with PARMONC — the statistical-physics domain the paper lists ("the
// Metropolis method, the Ising model").
//
// Each realization equilibrates a fresh lattice at inverse temperature
// β and reports (energy per site, |magnetization|). The replica
// simulator is the registered "ising" workload (internal/ising), so
// this program is a thin invocation: one run per β, overriding only the
// beta/sweeps/warmup parameters of the definition's schema. Sweeping β
// across the exact critical point β_c = ln(1+√2)/2 ≈ 0.4407 shows the
// order parameter turning on — the independent-replica pattern is
// exactly how PARMONC parallelizes Markov chain Monte Carlo.
//
//	go run ./examples/ising
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

func main() {
	def, err := workload.Lookup("ising")
	if err != nil {
		log.Fatal(err)
	}
	defaults, err := def.Schema.Resolve(nil)
	if err != nil {
		log.Fatal(err)
	}
	lat := defaults.Int("l")
	betas := []float64{0.20, 0.35, 0.44, 0.50, 0.60}
	betaC := math.Log(1+math.Sqrt2) / 2

	fmt.Printf("2-D Ising, %d×%d lattice, independent replicas (β_c = %.4f)\n", lat, lat, betaC)
	fmt.Printf("%8s  %20s  %20s\n", "β", "E per site", "|m|")
	for i, beta := range betas {
		id, err := def.Identity(workload.Values{"beta": beta, "sweeps": 80, "warmup": 40})
		if err != nil {
			log.Fatal(err)
		}
		factory, err := def.Factory(workload.Values(id.Params))
		if err != nil {
			log.Fatal(err)
		}
		res, err := parmonc.RunFactory(context.Background(), parmonc.Config{
			Nrow:       id.Nrow,
			Ncol:       id.Ncol,
			MaxSamples: 200,
			SeqNum:     uint64(i),
			WorkDir:    fmt.Sprintf("run-beta%03.0f", beta*100),
			PassPeriod: 100 * time.Millisecond,
			AverPeriod: 200 * time.Millisecond,
		}, factory)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		marker := ""
		if beta > betaC && rep.MeanAt(0, 1) > 0.5 {
			marker = "  ← ordered"
		}
		fmt.Printf("%8.2f  %9.4f±%-9.4f  %9.4f±%-9.4f%s\n", beta,
			rep.MeanAt(0, 0), rep.AbsErrAt(0, 0),
			rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), marker)
	}
}
