// Population: a Galton–Watson branching process with PARMONC — the
// population biology domain the paper's predecessor library MONC served
// at the Omsk Branch of the Sobolev Institute of Mathematics.
//
// Each lineage starts from one individual; every individual leaves a
// Poisson(μ) number of offspring. The lineage simulator is the
// registered "branching" workload (internal/branching), run here at its
// schema defaults: the realization is the pair (population after n
// generations, extinct-by-n indicator), so the PARMONC sample means
// estimate E Z_n = μⁿ and the extinction probability q (the root of
// q = e^{μ(q−1)}, solved by the same package) simultaneously — both
// known in closed form, so the output is self-checking.
//
//	go run ./examples/population
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/branching"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

func main() {
	def, err := workload.Lookup("branching")
	if err != nil {
		log.Fatal(err)
	}
	id, err := def.Identity(nil) // mu=1.5, generations=40, popcap=1e6
	if err != nil {
		log.Fatal(err)
	}
	v := workload.Values(id.Params)
	factory, err := def.Factory(v)
	if err != nil {
		log.Fatal(err)
	}

	res, err := parmonc.RunFactory(context.Background(), parmonc.Config{
		Nrow:       id.Nrow,
		Ncol:       id.Ncol,
		MaxSamples: 100_000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, factory)
	if err != nil {
		log.Fatal(err)
	}

	p := branching.Process{
		Mu:          v.Float("mu"),
		Generations: v.Int("generations"),
		PopCap:      v.Int64("popcap"),
	}
	rep := res.Report
	q := p.ExtinctionProbability()
	fmt.Printf("Galton–Watson, Poisson(%.1f) offspring, %d generations, L = %d lineages\n",
		p.Mu, p.Generations, rep.N)
	fmt.Printf("  extinction fraction  %.5f ± %.5f   (theory q = %.5f)\n",
		rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), q)
	fmt.Printf("  mean population      %.3g           (theory μ^n = %.3g; surviving lineages are\n",
		rep.MeanAt(0, 0), p.MeanPopulation())
	fmt.Printf("                        truncated at the %.0g cap, so the estimate is a deliberate undercount)\n",
		float64(p.PopCap))
	if math.Abs(rep.MeanAt(0, 1)-q) < rep.AbsErrAt(0, 1) {
		fmt.Println("  extinction probability inside the 3σ interval ✓")
	}
}
