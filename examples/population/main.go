// Population: a Galton–Watson branching process with PARMONC — the
// population biology domain the paper's predecessor library MONC served
// at the Omsk Branch of the Sobolev Institute of Mathematics.
//
// Each lineage starts from one individual; every individual leaves a
// Poisson(μ) number of offspring. The realization is the pair
// (population after n generations, extinct-by-n indicator), so the
// PARMONC sample means estimate E Z_n = μⁿ and the extinction
// probability q (the root of q = e^{μ(q−1)}) simultaneously — both known
// in closed form, so the output is self-checking.
//
//	go run ./examples/population
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/dist"
)

const (
	mu          = 1.5
	generations = 40
	popCap      = 1_000_000
)

// lineage simulates one family line; out = [Z_n, extinct?].
func lineage(src *parmonc.Stream, out []float64) error {
	z := int64(1)
	for g := 0; g < generations && z > 0 && z <= popCap; g++ {
		// The offspring of z individuals total Poisson(z·μ).
		z = dist.Poisson(src, float64(z)*mu)
	}
	out[0] = float64(z)
	if z == 0 {
		out[1] = 1
	}
	return nil
}

// extinctionProbability solves q = exp(μ(q−1)) by fixed point.
func extinctionProbability() float64 {
	q := 0.0
	for i := 0; i < 200; i++ {
		q = math.Exp(mu * (q - 1))
	}
	return q
}

func main() {
	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow:       1,
		Ncol:       2,
		MaxSamples: 100_000,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, lineage)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	q := extinctionProbability()
	fmt.Printf("Galton–Watson, Poisson(%.1f) offspring, %d generations, L = %d lineages\n",
		mu, generations, rep.N)
	fmt.Printf("  extinction fraction  %.5f ± %.5f   (theory q = %.5f)\n",
		rep.MeanAt(0, 1), rep.AbsErrAt(0, 1), q)
	fmt.Printf("  mean population      %.3g           (theory μ^n = %.3g; surviving lineages are\n",
		rep.MeanAt(0, 0), math.Pow(mu, generations))
	fmt.Printf("                        truncated at the %.0g cap, so the estimate is a deliberate undercount)\n",
		float64(popCap))
	if math.Abs(rep.MeanAt(0, 1)-q) < rep.AbsErrAt(0, 1) {
		fmt.Println("  extinction probability inside the 3σ interval ✓")
	}
}
