// Quickstart: estimate π with PARMONC.
//
// The user writes one sequential routine that simulates a single
// realization of the random object — here the indicator that a uniform
// point in the unit square falls inside the quarter disc — and hands it
// to parmonc.Run. The library parallelizes the simulation, computes the
// sample mean with its 3σ confidence bound, and stores results under
// ./parmonc_data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
)

func main() {
	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow:       1,
		Ncol:       1,
		MaxSamples: 2_000_000,
		SeqNum:     0,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, func(src *parmonc.Stream, out []float64) error {
		x, y := src.Float64(), src.Float64()
		if x*x+y*y < 1 {
			out[0] = 1
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	quarter := res.Report.MeanAt(0, 0)
	errBound := res.Report.AbsErrAt(0, 0)
	fmt.Printf("π ≈ %.6f ± %.6f  (exact %.6f, L = %d, %v)\n",
		4*quarter, 4*errBound, math.Pi, res.Report.N, res.Elapsed.Round(time.Millisecond))
	if math.Abs(4*quarter-math.Pi) < 4*errBound {
		fmt.Println("exact value inside the 3σ confidence interval ✓")
	} else {
		fmt.Println("WARNING: exact value outside the 3σ interval (p ≈ 0.3%)")
	}
}
