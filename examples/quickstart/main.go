// Quickstart: estimate π with PARMONC.
//
// The realization routine — the indicator that a uniform point in the
// unit square falls inside the quarter disc — ships registered in the
// workload registry as "pi", shared with `parmonc run -workload pi` and
// the cluster commands. This program is the thin-invocation form: look
// the definition up, build its factory at the schema defaults, and hand
// it to the library, which parallelizes the simulation, computes the
// sample mean with its 3σ confidence bound, and stores results under
// ./parmonc_data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"parmonc"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

func main() {
	def, err := workload.Lookup("pi")
	if err != nil {
		log.Fatal(err)
	}
	id, err := def.Identity(nil)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := def.Factory(workload.Values(id.Params))
	if err != nil {
		log.Fatal(err)
	}

	res, err := parmonc.RunFactory(context.Background(), parmonc.Config{
		Nrow:       id.Nrow,
		Ncol:       id.Ncol,
		MaxSamples: 2_000_000,
		SeqNum:     0,
		PassPeriod: 100 * time.Millisecond,
		AverPeriod: 200 * time.Millisecond,
	}, factory)
	if err != nil {
		log.Fatal(err)
	}

	quarter := res.Report.MeanAt(0, 0)
	errBound := res.Report.AbsErrAt(0, 0)
	fmt.Printf("π ≈ %.6f ± %.6f  (exact %.6f, L = %d, %v)\n",
		4*quarter, 4*errBound, math.Pi, res.Report.N, res.Elapsed.Round(time.Millisecond))
	if math.Abs(4*quarter-math.Pi) < 4*errBound {
		fmt.Println("exact value inside the 3σ confidence interval ✓")
	} else {
		fmt.Println("WARNING: exact value outside the 3σ interval (p ≈ 0.3%)")
	}
}
