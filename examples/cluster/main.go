// Cluster: a distributed PARMONC job in one program.
//
// The original library runs over MPI: rank 0 collects, other ranks
// simulate. Here the same protocol runs over TCP — a coordinator plus
// several workers, each of which could equally live on another machine
// (give the coordinator a routable address and start workers with the
// same realization routine). For the demo everything shares one process.
//
// The job estimates the absorption probability of the transport slab at
// three thicknesses as a 3×1 realization matrix.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"parmonc"
	"parmonc/dist"
)

// realization estimates absorption indicators for three slab widths
// (pure absorber, so P(absorb) = 1 − e^{−width} exactly).
func realization(src *parmonc.Stream, out []float64) error {
	for i, width := range widths {
		// One particle per width: absorbed unless its first free path
		// crosses the slab.
		if dist.Exponential(src, 1) < width {
			out[i] = 1
		}
	}
	return nil
}

var widths = []float64{0.5, 1.0, 2.0}

func main() {
	spec := parmonc.JobSpec{
		SeqNum:     0,
		Nrow:       3,
		Ncol:       1,
		MaxSamples: 300_000,
		Params:     parmonc.DefaultParams(),
		Gamma:      3,
		PassEvery:  1000,
	}
	coord, err := parmonc.NewCoordinator(spec, parmonc.CoordinatorConfig{
		WorkDir:       ".",
		AverPeriod:    100 * time.Millisecond,
		WorkerTimeout: 10 * time.Second,
	}, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator on %s, spawning 4 workers\n", coord.Addr())

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := parmonc.RunWorker(ctx, coord.Addr(), func(int) (parmonc.Realization, error) {
				return realization, nil
			}); err != nil {
				log.Printf("worker: %v", err)
			}
		}()
	}

	rep, err := coord.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("L = %d histories per width\n", rep.N)
	fmt.Printf("%8s  %22s  %10s\n", "width", "P(absorb)", "exact")
	for i, w := range widths {
		exact := 1 - math.Exp(-w)
		fmt.Printf("%8.1f  %9.5f±%-10.5f  %10.5f\n",
			w, rep.MeanAt(i, 0), rep.AbsErrAt(i, 0), exact)
	}
}
